module J = Analysis.Json
module Q = Proba.Rational
module LR = Lehmann_rabin
module IR = Itai_rodeh
module SC = Shared_coin
module BO = Ben_or

type config = {
  max_states : int;
  cache_bytes : int option;
  max_trials : int;
  deadline_ms : int option;
  degraded_after : float;
}

let default_config =
  { max_states = 2_000_000; cache_bytes = Some (64 * 1024 * 1024);
    max_trials = 200_000; deadline_ms = None; degraded_after = 5.0 }

let default_max_states = default_config.max_states

type t = {
  config : config;
  results : string Cache.t;
  started : float;
  requests : int Atomic.t;
  ok : int Atomic.t;
  client_errors : int Atomic.t;
  server_errors : int Atomic.t;
  overload : int Atomic.t;
  protocol_errors : int Atomic.t;
  draining : bool Atomic.t;
  (* In-flight compute requests (check/simulate/lint), id -> start
     time.  Read by /health to grade the daemon ok/degraded; a tiny
     table under a mutex, touched twice per request. *)
  inflight : (int, float) Hashtbl.t;
  inflight_mu : Mutex.t;
  inflight_id : int Atomic.t;
}

let create config =
  { config;
    results =
      Cache.create ?capacity:config.cache_bytes ~cost:String.length ();
    started = Unix.gettimeofday ();
    requests = Atomic.make 0;
    ok = Atomic.make 0;
    client_errors = Atomic.make 0;
    server_errors = Atomic.make 0;
    overload = Atomic.make 0;
    protocol_errors = Atomic.make 0;
    draining = Atomic.make false;
    inflight = Hashtbl.create 16;
    inflight_mu = Mutex.create ();
    inflight_id = Atomic.make 0 }

let note_overload t = Atomic.incr t.overload
let note_protocol_error t = Atomic.incr t.protocol_errors
let set_draining t v = Atomic.set t.draining v

let track t f =
  let id = Atomic.fetch_and_add t.inflight_id 1 in
  Mutex.protect t.inflight_mu (fun () ->
      Hashtbl.replace t.inflight id (Unix.gettimeofday ()));
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect t.inflight_mu (fun () -> Hashtbl.remove t.inflight id))
    f

(* ok | degraded | draining, plus the in-flight census: "degraded"
   means some compute request has been running longer than
   [degraded_after] seconds -- the daemon still answers, but new
   expensive work will queue behind pinned workers. *)
let health_json t =
  let now = Unix.gettimeofday () in
  let in_flight, oldest_start =
    Mutex.protect t.inflight_mu (fun () ->
        ( Hashtbl.length t.inflight,
          Hashtbl.fold (fun _ st acc -> Float.min st acc) t.inflight now ))
  in
  let oldest_ms = Stdlib.max 0. ((now -. oldest_start) *. 1000.) in
  let status =
    if Atomic.get t.draining then "draining"
    else if
      in_flight > 0 && oldest_ms >= t.config.degraded_after *. 1000.
    then "degraded"
    else "ok"
  in
  J.Obj
    [ ("status", J.Str status);
      ("in_flight", J.Int in_flight);
      ("oldest_ms", J.Int (int_of_float oldest_ms)) ]

(* ------------------------------------------------------------------ *)
(* JSON helpers. *)

let rat r = J.Str (Q.to_string r)
let claim_str c = Format.asprintf "%a" Core.Claim.pp c

(* Validated by [Protocol.sym_field]; [Off] is unreachable dead right. *)
let sym_mode s =
  Option.value (Analysis.Symmetry.mode_of_string s)
    ~default:Analysis.Symmetry.Off

(* Validated by [Protocol.plane_field]. *)
let plane_mode = function
  | "exact" -> Mdp.Plane.Exact
  | _ -> Mdp.Plane.Interval

(* The state count a body reports: for a certified orbit quotient, the
   unreduced reachable count recovered from the certificate -- which is
   what makes [sym=on] and [sym=off] bodies identical. *)
let arena_states cert arena =
  match cert with
  | Some c when c.Analysis.Symmetry.reduced ->
    c.Analysis.Symmetry.full_states
  | _ -> Mdp.Arena.num_states arena

let composed_json = function
  | Ok c -> J.Obj [ ("ok", J.Bool true); ("claim", J.Str (claim_str c)) ]
  | Error e -> J.Obj [ ("ok", J.Bool false); ("error", J.Str e) ]

(* ------------------------------------------------------------------ *)
(* /check.

   One function per case study, all shaped alike: schema, model,
   resolved params, a "verdict" ("complete" here; "exhausted" when the
   state ceiling fired), then the model's own results.  [prtb check
   --format json] prints exactly these values, which is what makes the
   served bodies bit-identical to the CLI path. *)

let check_params (c : Protocol.check_query) =
  let base = [ ("n", J.Int c.Protocol.n); ("g", J.Int c.Protocol.g);
               ("k", J.Int c.Protocol.k) ] in
  let extra =
    match c.Protocol.model with
    | `Lr -> [ ("topology", J.Str c.Protocol.topology) ]
    | `Coin -> [ ("bound", J.Int c.Protocol.bound) ]
    | `Consensus -> [ ("cap", J.Int c.Protocol.cap) ]
    | `Election -> []
  in
  J.Obj (base @ extra)

let check_header ~verdict (c : Protocol.check_query) rest =
  J.Obj
    ([ ("schema", J.Str "prtb-check/1");
       ("model", J.Str (Protocol.model_name c.Protocol.model));
       ("params", check_params c);
       ("verdict", J.Str verdict) ]
     @ rest)

let lr_arrow_json (a : LR.Proof.arrow) =
  J.Obj
    [ ("label", J.Str a.LR.Proof.label);
      ("pre", J.Str (Core.Pred.name a.LR.Proof.pre));
      ("post", J.Str (Core.Pred.name a.LR.Proof.post));
      ("time", rat a.LR.Proof.time);
      ("prob", rat a.LR.Proof.prob);
      ("attained", rat a.LR.Proof.attained);
      ("holds", J.Bool (a.LR.Proof.claim <> None)) ]

let check_lr_ring ~max_states (c : Protocol.check_query) =
  let inst =
    Models.lr ~max_states ~g:c.Protocol.g ~k:c.Protocol.k
      ~sym:(sym_mode c.Protocol.sym) ~n:c.Protocol.n ()
  in
  check_header ~verdict:"complete" c
    [ ("states",
       J.Int (arena_states inst.LR.Proof.sym inst.LR.Proof.arena));
      ( "invariant",
        J.Str
          (match LR.Invariant.check inst.LR.Proof.expl with
           | None -> "holds"
           | Some _ -> "violated") );
      ("arrows", J.Arr (List.map lr_arrow_json (LR.Proof.arrows inst)));
      ("composed", composed_json (LR.Proof.composed inst));
      ("direct_bound", rat (LR.Proof.direct_bound inst));
      ( "expected_bound",
        rat (Core.Expected.value (LR.Proof.expected_bound ())) );
      ("max_expected_time", J.Num (LR.Proof.max_expected_time inst)) ]

let check_lr_topo ~max_states (c : Protocol.check_query) =
  let topo =
    match c.Protocol.topology with
    | "line" -> LR.Topology.line c.Protocol.n
    | _ -> LR.Topology.star c.Protocol.n
  in
  let inst =
    Models.lr_topo ~max_states ~g:c.Protocol.g ~k:c.Protocol.k
      ~sym:(sym_mode c.Protocol.sym) ~topo ()
  in
  check_header ~verdict:"complete" c
    [ ("states",
       J.Int (arena_states inst.LR.Proof.tsym inst.LR.Proof.tarena));
      ( "invariant",
        J.Str
          (match LR.Proof.invariant_topo inst with
           | None -> "holds"
           | Some _ -> "violated") );
      ("arrows", J.Arr (List.map lr_arrow_json (LR.Proof.arrows_topo inst)));
      ("composed", composed_json (LR.Proof.composed_topo inst));
      ("direct_bound", rat (LR.Proof.direct_bound_topo inst));
      ("max_expected_time", J.Num (LR.Proof.max_expected_time_topo inst)) ]

let check_election ~max_states (c : Protocol.check_query) =
  let inst =
    Models.election ~max_states ~sym:(sym_mode c.Protocol.sym)
      ~n:c.Protocol.n ()
  in
  let arrow (a : IR.Proof.arrow) =
    J.Obj
      [ ("label", J.Str a.IR.Proof.label);
        ("time", rat a.IR.Proof.time);
        ("prob", rat a.IR.Proof.prob);
        ("attained", rat a.IR.Proof.attained);
        ("holds", J.Bool (a.IR.Proof.claim <> None)) ]
  in
  check_header ~verdict:"complete" c
    [ ("states",
       J.Int (arena_states inst.IR.Proof.sym inst.IR.Proof.arena));
      ("arrows", J.Arr (List.map arrow (IR.Proof.arrows inst)));
      ("composed", composed_json (IR.Proof.composed inst));
      ( "expected_bound",
        rat (Core.Expected.value (IR.Proof.expected_bound ~n:c.Protocol.n)) );
      ("max_expected_time", J.Num (IR.Proof.max_expected_time inst)) ]

let check_coin ~max_states (c : Protocol.check_query) =
  let inst =
    Models.coin ~max_states ~sym:(sym_mode c.Protocol.sym) ~n:c.Protocol.n
      ~bound:c.Protocol.bound ()
  in
  let arrow (a : SC.Proof.arrow) =
    J.Obj
      [ ("label", J.Str a.SC.Proof.label);
        ("time", rat a.SC.Proof.time);
        ("prob", rat a.SC.Proof.prob);
        ("attained", rat a.SC.Proof.attained);
        ("holds", J.Bool (a.SC.Proof.claim <> None)) ]
  in
  check_header ~verdict:"complete" c
    [ ("states",
       J.Int (arena_states inst.SC.Proof.sym inst.SC.Proof.arena));
      ("arrows", J.Arr (List.map arrow (SC.Proof.arrows inst)));
      ("composed", composed_json (SC.Proof.composed inst));
      ("direct_bound", rat (SC.Proof.direct_bound inst));
      ("expected_exact", J.Num (SC.Proof.expected_exact inst));
      ("expected_theory", J.Num (SC.Proof.expected_theory inst)) ]

let check_consensus ~max_states (c : Protocol.check_query) =
  let n = c.Protocol.n in
  let f = (n - 1) / 2 in
  let initial = Array.init n (fun i -> i = n - 1) in
  let inst =
    Models.consensus ~max_states ~sym:(sym_mode c.Protocol.sym) ~n ~f
      ~cap:c.Protocol.cap ~initial ()
  in
  let curve =
    BO.Proof.decision_curve inst
      ~rounds:(List.init c.Protocol.cap (fun r -> r + 1))
  in
  check_header ~verdict:"complete" c
    [ ("states",
       J.Int (arena_states inst.BO.Proof.sym inst.BO.Proof.arena));
      ("f", J.Int f);
      ( "agreement",
        J.Str
          (match BO.Proof.agreement_violation inst with
           | None -> "holds"
           | Some _ -> "violated") );
      ( "decision_curve",
        J.Arr
          (List.mapi
             (fun idx p ->
                J.Obj [ ("rounds", J.Int (idx + 1)); ("min_prob", rat p) ])
             curve) ) ]

(* The Estimate rung of the deadline ladder: one seeded Monte Carlo
   trial (the budgeted estimator's at-least-one-trial guarantee, under
   an already-expired clock) against the query's own instance, so a
   degraded body still carries quantitative content.  Deterministic for
   a fixed query: a fixed seed, a fixed horizon, and a trial count
   pinned to 1 -- which is what lets tests fixture the body. *)
let deadline_estimate (c : Protocol.check_query) =
  let n = c.Protocol.n and g = c.Protocol.g and k = c.Protocol.k in
  let estimate setup ~target ~within =
    let expired = Core.Budget.start (Core.Budget.v ~wall:0.0 ~retries:1 ()) in
    let b =
      Sim.Monte_carlo.estimate_reach_budgeted setup ~target ~within
        ~clock:expired ~initial_trials:1 ~seed:1994 ()
    in
    let lo, hi = Proba.Stat.Proportion.wilson_ci b.Sim.Monte_carlo.prop in
    Some
      (J.Obj
         [ ("kind", J.Str "monte-carlo");
           ("within", J.Int within);
           ("trials", J.Int b.Sim.Monte_carlo.trials_run);
           ( "estimate",
             J.Num (Proba.Stat.Proportion.estimate b.Sim.Monte_carlo.prop) );
           ("ci95", J.Arr [ J.Num lo; J.Num hi ]) ])
  in
  match c.Protocol.model with
  | `Lr when c.Protocol.topology = "ring" ->
    let params = { LR.Automaton.n; g; k } in
    let pa = LR.Automaton.make params in
    estimate
      { Sim.Monte_carlo.pa; scheduler = Sim.Scheduler.uniform pa;
        duration = LR.Automaton.duration;
        start = LR.State.all_trying ~n ~g ~k }
      ~target:(Core.Pred.mem LR.Regions.c) ~within:(13 * g)
  | `Lr -> None
  | `Election ->
    let params = { IR.Automaton.n; g; k } in
    let pa = IR.Automaton.make params in
    estimate
      { Sim.Monte_carlo.pa; scheduler = Sim.Scheduler.uniform pa;
        duration = IR.Automaton.duration;
        start = IR.Automaton.start params }
      ~target:IR.Automaton.leader_elected ~within:(2 * n * g)
  | `Coin ->
    let params = { SC.Automaton.n; bound = c.Protocol.bound; g; k } in
    let pa = SC.Automaton.make params in
    estimate
      { Sim.Monte_carlo.pa; scheduler = Sim.Scheduler.uniform pa;
        duration = SC.Automaton.duration;
        start = SC.Automaton.start params }
      ~target:(SC.Automaton.decided params)
      ~within:(4 * c.Protocol.bound * c.Protocol.bound * g)
  | `Consensus ->
    let f = (n - 1) / 2 in
    let params = { BO.Automaton.n; f; cap = c.Protocol.cap; g; k } in
    let initial = Array.init n (fun i -> i = n - 1) in
    let pa = BO.Automaton.make ~initial params in
    estimate
      { Sim.Monte_carlo.pa; scheduler = Sim.Scheduler.uniform pa;
        duration = BO.Automaton.duration;
        start = BO.Automaton.start params initial }
      ~target:BO.Automaton.some_decided ~within:(4 * c.Protocol.cap * g)

(* The SRV122 body deliberately contains nothing timing-dependent
   (no elapsed milliseconds, no interned-state count): where the
   deadline fired varies run to run, but the degraded answer is a
   fixed function of the query, so it can be asserted byte for byte. *)
let deadline_exceeded_json (c : Protocol.check_query) ~deadline_ms =
  let rungs =
    match deadline_estimate c with
    | Some est -> [ ("estimate", est) ]
    | None -> [ ("estimate", J.Null) ]
  in
  check_header ~verdict:"deadline-exceeded" c
    ([ ("code", J.Str "SRV122");
       ("deadline_ms", J.Int deadline_ms);
       ( "message",
         J.Str
           (Printf.sprintf
              "deadline of %d ms exceeded before exact verification \
               finished; the estimate below is Monte Carlo evidence, not \
               a proof -- raise deadline_ms for the exact verdict"
              deadline_ms) ) ]
     @ rungs)

let check_json ?(max_states = default_max_states) (c : Protocol.check_query) =
  let max_states =
    match c.Protocol.max_states with
    | Some client -> Stdlib.min client max_states
    | None -> max_states
  in
  let compute () =
    try
      Mdp.Plane.with_ambient (plane_mode c.Protocol.plane) (fun () ->
          match c.Protocol.model with
          | `Lr when c.Protocol.topology = "ring" ->
            check_lr_ring ~max_states c
          | `Lr -> check_lr_topo ~max_states c
          | `Election -> check_election ~max_states c
          | `Coin -> check_coin ~max_states c
          | `Consensus -> check_consensus ~max_states c)
    with
    | Mdp.Explore.Too_many_states m ->
      check_header ~verdict:"exhausted" c
        [ ("states_interned", J.Int m);
          ("code", J.Str "SRV120");
          ( "message",
            J.Str
              (Printf.sprintf
                 "exploration stopped after interning %d states (ceiling %d); \
                  raise max_states or shrink the instance"
                 m max_states) ) ]
    | Analysis.Symmetry.Not_certified msg ->
      check_header ~verdict:"not-certified" c
        [ ("code", J.Str "SRV121"); ("message", J.Str msg) ]
  in
  match c.Protocol.deadline_ms with
  | None -> compute ()
  | Some ms ->
    let clock =
      Core.Budget.start (Core.Budget.v ~wall:(float_of_int ms /. 1000.) ())
    in
    (match Core.Budget.with_deadline clock compute with
     | json -> json
     | exception Core.Budget.Deadline_exceeded _ ->
       deadline_exceeded_json c ~deadline_ms:ms)

(* ------------------------------------------------------------------ *)
(* /cert.

   The same computation as /check, reified: instead of summarizing the
   composed claim as one line, the whole derivation is emitted as a
   certificate DAG ([lib/cert]) whose leaves carry the arena
   fingerprint and the full configuration that produced them.  [prtb
   check --emit-cert] prints exactly [cert_json]'s value, which is what
   makes served /cert bodies bit-identical to the CLI path. *)

let cert_header ~verdict (c : Protocol.check_query) rest =
  J.Obj
    ([ ("schema", J.Str Cert.Node.wire_schema);
       ("model", J.Str (Protocol.model_name c.Protocol.model));
       ("params", check_params c);
       ("verdict", J.Str verdict) ]
     @ rest)

let leaf_config ~max_states (c : Protocol.check_query) =
  let s = string_of_int in
  let params =
    match c.Protocol.model with
    | `Lr ->
      [ ("g", s c.Protocol.g); ("k", s c.Protocol.k);
        ("topology", c.Protocol.topology) ]
    | `Election -> [ ("g", s c.Protocol.g); ("k", s c.Protocol.k) ]
    | `Coin ->
      [ ("bound", s c.Protocol.bound); ("g", s c.Protocol.g);
        ("k", s c.Protocol.k) ]
    | `Consensus ->
      [ ("cap", s c.Protocol.cap); ("f", s ((c.Protocol.n - 1) / 2));
        ("g", s c.Protocol.g); ("k", s c.Protocol.k) ]
  in
  { Cert.Node.model = Protocol.model_name c.Protocol.model;
    n = c.Protocol.n;
    plane = c.Protocol.plane;
    sym = c.Protocol.sym;
    faults = "none";
    budget = Printf.sprintf "states:%d" max_states;
    params }

let cert_json ?(max_states = default_max_states) (c : Protocol.check_query) =
  let max_states =
    match c.Protocol.max_states with
    | Some client -> Stdlib.min client max_states
    | None -> max_states
  in
  let emit arena composed =
    match composed with
    | Error e ->
      cert_header ~verdict:"uncertified" c
        [ ("code", J.Str "SRV123"); ("message", J.Str e) ]
    | Ok claim ->
      Cert.Node.to_json
        (Cert.Emit.emit
           ~config:(leaf_config ~max_states c)
           ~fingerprint:(Mdp.Arena.fingerprint arena) claim)
  in
  let compute () =
    try
      Mdp.Plane.with_ambient (plane_mode c.Protocol.plane) (fun () ->
          let sym = sym_mode c.Protocol.sym in
          match c.Protocol.model with
          | `Lr when c.Protocol.topology = "ring" ->
            let inst =
              Models.lr ~max_states ~g:c.Protocol.g ~k:c.Protocol.k ~sym
                ~n:c.Protocol.n ()
            in
            emit inst.LR.Proof.arena (LR.Proof.composed inst)
          | `Lr ->
            let topo =
              match c.Protocol.topology with
              | "line" -> LR.Topology.line c.Protocol.n
              | _ -> LR.Topology.star c.Protocol.n
            in
            let inst =
              Models.lr_topo ~max_states ~g:c.Protocol.g ~k:c.Protocol.k
                ~sym ~topo ()
            in
            emit inst.LR.Proof.tarena (LR.Proof.composed_topo inst)
          | `Election ->
            let inst = Models.election ~max_states ~sym ~n:c.Protocol.n () in
            emit inst.IR.Proof.arena (IR.Proof.composed inst)
          | `Coin ->
            let inst =
              Models.coin ~max_states ~sym ~n:c.Protocol.n
                ~bound:c.Protocol.bound ()
            in
            emit inst.SC.Proof.arena (SC.Proof.composed inst)
          | `Consensus ->
            let n = c.Protocol.n in
            let f = (n - 1) / 2 in
            let initial = Array.init n (fun i -> i = n - 1) in
            let inst =
              Models.consensus ~max_states ~sym ~n ~f ~cap:c.Protocol.cap
                ~initial ()
            in
            emit inst.BO.Proof.arena
              (BO.Proof.composed inst ~rounds:c.Protocol.cap))
    with
    | Mdp.Explore.Too_many_states m ->
      cert_header ~verdict:"exhausted" c
        [ ("states_interned", J.Int m);
          ("code", J.Str "SRV120");
          ( "message",
            J.Str
              (Printf.sprintf
                 "exploration stopped after interning %d states (ceiling %d); \
                  raise max_states or shrink the instance"
                 m max_states) ) ]
    | Analysis.Symmetry.Not_certified msg ->
      cert_header ~verdict:"not-certified" c
        [ ("code", J.Str "SRV121"); ("message", J.Str msg) ]
  in
  match c.Protocol.deadline_ms with
  | None -> compute ()
  | Some ms ->
    let clock =
      Core.Budget.start (Core.Budget.v ~wall:(float_of_int ms /. 1000.) ())
    in
    (match Core.Budget.with_deadline clock compute with
     | json -> json
     | exception Core.Budget.Deadline_exceeded _ ->
       (* No Estimate rung here: a certificate is exact by nature, so
          the degraded body only names the deadline (timing-free, hence
          byte-stable), and [is_degraded] keeps it out of the cache. *)
       cert_header ~verdict:"deadline-exceeded" c
         [ ("code", J.Str "SRV122");
           ("deadline_ms", J.Int ms);
           ( "message",
             J.Str
               (Printf.sprintf
                  "deadline of %d ms exceeded before the certificate was \
                   emitted; raise deadline_ms"
                  ms) ) ])

(* ------------------------------------------------------------------ *)
(* /simulate. *)

let proportion_json p =
  let lo, hi = Proba.Stat.Proportion.wilson_ci p in
  J.Obj
    [ ("estimate", J.Num (Proba.Stat.Proportion.estimate p));
      ("ci95", J.Arr [ J.Num lo; J.Num hi ]) ]

let summary_json s missed =
  let lo, hi = Proba.Stat.Summary.mean_ci s in
  J.Obj
    [ ("mean", J.Num (Proba.Stat.Summary.mean s));
      ("ci95", J.Arr [ J.Num lo; J.Num hi ]);
      ("missed", J.Int missed) ]

let sim_header (s : Protocol.simulate_query) ~trials rest =
  J.Obj
    ([ ("schema", J.Str "prtb-simulate/1");
       ("model", J.Str (Protocol.model_name s.Protocol.sim_model));
       ("n", J.Int s.Protocol.sim_n);
       ("scheduler", J.Str s.Protocol.scheduler);
       ("trials", J.Int trials);
       ("seed", J.Int s.Protocol.seed) ]
     @ rest)

let simulate_json t (s : Protocol.simulate_query) =
  let n = s.Protocol.sim_n in
  let trials = Stdlib.min s.Protocol.trials t.config.max_trials in
  let seed = s.Protocol.seed in
  let uniform_only () =
    if s.Protocol.scheduler <> "uniform" then
      Error
        (Protocol.error ~status:400 ~code:"SRV103"
           (Printf.sprintf "scheduler %S applies to the lr model only"
              s.Protocol.scheduler))
    else Ok ()
  in
  let run setup ~target =
    match s.Protocol.within with
    | Some within ->
      let prop =
        Sim.Monte_carlo.estimate_reach setup ~target ~within ~trials ~seed
      in
      Ok
        (sim_header s ~trials
           [ ("within", J.Int within); ("reach", proportion_json prop) ])
    | None ->
      let summary, missed =
        Sim.Monte_carlo.estimate_time setup ~target ~trials ~seed ()
      in
      Ok (sim_header s ~trials [ ("time", summary_json summary missed) ])
  in
  match s.Protocol.sim_model with
  | `Lr ->
    let params = { LR.Automaton.n; g = 1; k = 1 } in
    let pa = LR.Automaton.make params in
    (match List.assoc_opt s.Protocol.scheduler (LR.Schedulers.all pa) with
     | None ->
       Error
         (Protocol.error ~status:400 ~code:"SRV103"
            (Printf.sprintf "unknown scheduler %S" s.Protocol.scheduler))
     | Some sched ->
       run
         { Sim.Monte_carlo.pa; scheduler = sched;
           duration = LR.Automaton.duration;
           start = LR.State.all_trying ~n ~g:1 ~k:1 }
         ~target:(Core.Pred.mem LR.Regions.c))
  | `Election ->
    Result.bind (uniform_only ()) (fun () ->
        let params = { IR.Automaton.n; g = 1; k = 1 } in
        let pa = IR.Automaton.make params in
        run
          { Sim.Monte_carlo.pa; scheduler = Sim.Scheduler.uniform pa;
            duration = IR.Automaton.duration;
            start = IR.Automaton.start params }
          ~target:IR.Automaton.leader_elected)
  | `Coin ->
    Result.bind (uniform_only ()) (fun () ->
        let params = { SC.Automaton.n; bound = 4; g = 1; k = 1 } in
        let pa = SC.Automaton.make params in
        run
          { Sim.Monte_carlo.pa; scheduler = Sim.Scheduler.uniform pa;
            duration = SC.Automaton.duration;
            start = SC.Automaton.start params }
          ~target:(SC.Automaton.decided params))
  | `Consensus ->
    Result.bind (uniform_only ()) (fun () ->
        let f = (n - 1) / 2 in
        let params = { BO.Automaton.n; f; cap = 50; g = 1; k = 1 } in
        let initial = Array.init n (fun i -> i = n - 1) in
        let pa = BO.Automaton.make ~initial params in
        run
          { Sim.Monte_carlo.pa; scheduler = Sim.Scheduler.uniform pa;
            duration = BO.Automaton.duration;
            start = BO.Automaton.start params initial }
          ~target:BO.Automaton.some_decided)

(* ------------------------------------------------------------------ *)
(* /lint. *)

let lint_json t (l : Protocol.lint_query) =
  match Models.find_opt l.Protocol.target with
  | None ->
    Error
      (Protocol.error ~status:404 ~code:"SRV104"
         (Printf.sprintf "unknown lint target %S (try one of: %s)"
            l.Protocol.target
            (String.concat ", "
               (List.map (fun e -> e.Models.name) Models.entries))))
  | Some entry ->
    let max_states =
      match l.Protocol.lint_max_states with
      | Some client -> Stdlib.min client t.config.max_states
      | None -> t.config.max_states
    in
    let report =
      entry.Models.lint ~max_states ~sym:(sym_mode l.Protocol.lint_sym) ()
    in
    Ok
      (J.Obj
         [ ("schema", J.Str "prtb-lint/1");
           ("target", J.Str l.Protocol.target);
           ("report", Analysis.Report.to_json report) ])

(* ------------------------------------------------------------------ *)
(* /stats. *)

let stats_json t =
  let r = Models.stats () in
  let c = Cache.stats t.results in
  J.Obj
    [ ("schema", J.Str "prtb-stats/1");
      ( "registry",
        J.Obj
          [ ("explorations", J.Int r.Models.explorations);
            ("compiles", J.Int r.Models.compiles);
            ("builds", J.Int r.Models.builds);
            ("cache_hits", J.Int r.Models.cache_hits);
            ("evictions", J.Int r.Models.evictions);
            ("cached_entries", J.Int r.Models.cached_entries);
            ("cached_bytes", J.Int r.Models.cached_bytes) ] );
      ( "results_cache",
        J.Obj
          [ ("hits", J.Int c.Cache.hits);
            ("misses", J.Int c.Cache.misses);
            ("insertions", J.Int c.Cache.insertions);
            ("evictions", J.Int c.Cache.evictions);
            ("entries", J.Int c.Cache.entries);
            ("cost_bytes", J.Int c.Cache.cost_bytes);
            ( "capacity_bytes",
              match c.Cache.capacity with
              | None -> J.Null
              | Some b -> J.Int b ) ] );
      ( "server",
        J.Obj
          [ ("requests", J.Int (Atomic.get t.requests));
            ("ok", J.Int (Atomic.get t.ok));
            ("client_errors", J.Int (Atomic.get t.client_errors));
            ("server_errors", J.Int (Atomic.get t.server_errors));
            ("overload_rejected", J.Int (Atomic.get t.overload));
            ("protocol_errors", J.Int (Atomic.get t.protocol_errors));
            ("uptime_s", J.Num (Unix.gettimeofday () -. t.started)) ] ) ]

(* ------------------------------------------------------------------ *)
(* Dispatch. *)

type reply = {
  status : int;
  headers : (string * string) list;
  body : string;
}

let count_status t status =
  if status >= 200 && status < 300 then Atomic.incr t.ok
  else if status >= 400 && status < 500 then Atomic.incr t.client_errors
  else if status >= 500 then Atomic.incr t.server_errors

let ok_reply t ?(headers = []) body =
  count_status t 200;
  { status = 200; headers; body }

let error_reply t (e : Protocol.error) =
  count_status t e.Protocol.status;
  { status = e.Protocol.status; headers = [];
    body = Protocol.error_body e }

(* Compute-once-then-cache for the cacheable endpoints.  The cache is
   consulted and filled outside any lock around [compute]: two workers
   racing the same cold key duplicate the work, the second insert wins,
   and both serve equal bodies (computations are deterministic). *)
let canonical_key t query =
  Protocol.canonical_key ~max_states:t.config.max_states
    ~max_trials:t.config.max_trials query

(* A deadline-degraded body must never enter the result cache: where
   the deadline fired is timing-dependent, and the next client may
   bring a larger allowance.  Complete (and SRV120/SRV121) bodies are
   deterministic in the canonical key and cache as before. *)
let is_degraded = function
  | J.Obj fields -> List.assoc_opt "code" fields = Some (J.Str "SRV122")
  | _ -> false

let with_cache t query compute =
  match canonical_key t query with
  | None ->
    (match compute () with
     | Ok json -> ok_reply t (J.to_string json)
     | Error e -> error_reply t e)
  | Some key ->
    (match Cache.find t.results key with
     | Some body -> ok_reply t ~headers:[ ("X-Prtb-Cache", "hit") ] body
     | None ->
       (match compute () with
        | Ok json when is_degraded json ->
          ok_reply t
            ~headers:
              [ ("X-Prtb-Cache", "miss"); ("X-Prtb-Degraded", "SRV122") ]
            (J.to_string json)
        | Ok json ->
          let body = J.to_string json in
          Cache.add t.results key body;
          ok_reply t ~headers:[ ("X-Prtb-Cache", "miss") ] body
        | Error e -> error_reply t e))

let cached t query =
  match canonical_key t query with
  | None -> false
  | Some key ->
    (* A stats-neutral probe would need a peek API; [find] counting a
       hit is fine for the monitoring use this serves. *)
    Cache.find t.results key <> None

(* The effective deadline is the tighter of the client's ask and the
   server-wide default ([serve --deadline]). *)
let effective_deadline t client =
  match t.config.deadline_ms, client with
  | None, c -> c
  | (Some _ as d), None -> d
  | Some server, Some client -> Some (Stdlib.min server client)

(* Generic degraded body for the endpoints without a model-specific
   Estimate rung (/simulate, /lint). *)
let degraded_json ~schema fields ~deadline_ms =
  J.Obj
    ([ ("schema", J.Str schema) ]
     @ fields
     @ [ ("verdict", J.Str "deadline-exceeded");
         ("code", J.Str "SRV122");
         ("deadline_ms", J.Int deadline_ms);
         ( "message",
           J.Str
             (Printf.sprintf
              "deadline of %d ms exceeded; raise deadline_ms for the \
               full answer" deadline_ms) ) ])

let under_deadline deadline_ms degraded compute =
  match deadline_ms with
  | None -> compute ()
  | Some ms ->
    let clock =
      Core.Budget.start (Core.Budget.v ~wall:(float_of_int ms /. 1000.) ())
    in
    (match Core.Budget.with_deadline clock compute with
     | r -> r
     | exception Core.Budget.Deadline_exceeded _ ->
       Ok (degraded ~deadline_ms:ms))

(* One query to one reply, /batch elements included ([handle] adds the
   per-request accounting and the last-resort catch).  Sub-replies of a
   batch pass through [ok_reply]/[error_reply] like any other, so the
   ok/client_errors counters see batch elements individually; only
   [requests] counts the envelope once. *)
let rec dispatch t query =
  match query with
  | Protocol.Health { sleep_ms } ->
      if sleep_ms > 0 then Unix.sleepf (float_of_int sleep_ms /. 1000.0);
      ok_reply t (J.to_string (health_json t))
    | Protocol.Stats -> ok_reply t (J.to_string (stats_json t))
    | Protocol.Check c ->
      let c =
        { c with
          Protocol.deadline_ms =
            effective_deadline t c.Protocol.deadline_ms }
      in
      track t (fun () ->
          with_cache t query (fun () ->
              Ok (check_json ~max_states:t.config.max_states c)))
    | Protocol.Cert c ->
      let c =
        { c with
          Protocol.deadline_ms =
            effective_deadline t c.Protocol.deadline_ms }
      in
      track t (fun () ->
          with_cache t query (fun () ->
              Ok (cert_json ~max_states:t.config.max_states c)))
    | Protocol.Simulate s ->
      let dl = effective_deadline t s.Protocol.sim_deadline_ms in
      track t (fun () ->
          with_cache t query (fun () ->
              under_deadline dl
                (degraded_json ~schema:"prtb-simulate/1"
                   [ ( "model",
                       J.Str (Protocol.model_name s.Protocol.sim_model) );
                     ("n", J.Int s.Protocol.sim_n) ])
                (fun () -> simulate_json t s)))
    | Protocol.Lint l ->
      let dl = effective_deadline t l.Protocol.lint_deadline_ms in
      track t (fun () ->
          with_cache t query (fun () ->
              under_deadline dl
                (degraded_json ~schema:"prtb-lint/1"
                   [ ("target", J.Str l.Protocol.target) ])
                (fun () -> lint_json t l)))
  | Protocol.Batch qs ->
    track t (fun () ->
        (* Elements sharing a canonical key are computed once and the
           reply reused -- the arena sweep and the body serialization
           both happen a single time per distinct key.  Distinct keys
           on the same model still share one arena through the Models
           registry, so a batch over one instance explores it at most
           once. *)
        let seen : (string, reply) Hashtbl.t = Hashtbl.create 16 in
        let replies =
          List.map
            (fun q ->
               match canonical_key t q with
               | Some key when Hashtbl.mem seen key -> Hashtbl.find seen key
               | key_opt ->
                 let r = dispatch t q in
                 (match key_opt with
                  | Some key -> Hashtbl.replace seen key r
                  | None -> ());
                 r)
            qs
        in
        (* The envelope splices each sub-reply's body bytes verbatim --
           never reparsed, never reserialized -- which is what makes
           batched bodies bit-identical to the single-query endpoints
           (asserted in test/test_server.ml). *)
        let buf = Buffer.create 4096 in
        Buffer.add_string buf "{\"schema\":\"prtb-batch/1\",\"count\":";
        Buffer.add_string buf (string_of_int (List.length replies));
        Buffer.add_string buf ",\"results\":[";
        List.iteri
          (fun i r ->
             if i > 0 then Buffer.add_char buf ',';
             Buffer.add_string buf "{\"status\":";
             Buffer.add_string buf (string_of_int r.status);
             (match List.assoc_opt "X-Prtb-Cache" r.headers with
              | Some c ->
                Buffer.add_string buf ",\"cache\":\"";
                Buffer.add_string buf c;
                Buffer.add_char buf '"'
              | None -> ());
             Buffer.add_string buf ",\"body\":";
             Buffer.add_string buf r.body;
             Buffer.add_char buf '}')
          replies;
        Buffer.add_string buf "]}";
        (* Sub-replies were counted by ok_reply/error_reply above; the
           envelope itself stays out of the status counters. *)
        { status = 200; headers = []; body = Buffer.contents buf })

let handle t query =
  Atomic.incr t.requests;
  try dispatch t query
  with e ->
    error_reply t
      (Protocol.error ~status:500 ~code:"SRV300"
         (Printf.sprintf "internal error: %s" (Printexc.to_string e)))

let respond t req =
  match Protocol.of_request req with
  | Ok q -> handle t q
  | Error e ->
    Atomic.incr t.requests;
    error_reply t e
