(** A minimal HTTP/1.1 message layer for the verification service.

    Implements exactly the fragment [prtb serve] and [prtb loadtest]
    need -- request/response framing with [Content-Length] bodies,
    keep-alive, percent-decoded query strings -- over an abstract
    byte-source, so the parser is testable without sockets and the
    same reader drives both the server and the load client.

    Deliberately out of scope (requests using them are answered with a
    clean 4xx/501 and the connection is closed, no exception escapes):
    chunked transfer encoding, multiline headers, upgrade, TLS.

    Every input dimension is limited ({!limits}): request-line and
    header-line length, header count, body size.  Exceeding a limit is
    a parse {e error} with the appropriate status (431/413), not a
    crash -- the daemon turns it into a response and closes. *)

type meth = GET | POST | Other of string

type version = [ `Http_1_0 | `Http_1_1 ]

type request = {
  meth : meth;
  target : string;  (** raw request target, e.g. ["/check?model=lr"] *)
  path : string;  (** percent-decoded path without the query string *)
  query : (string * string) list;  (** percent-decoded query pairs *)
  version : version;
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
}

type limits = {
  max_line : int;  (** request line and each header line, bytes *)
  max_headers : int;  (** header count *)
  max_body : int;  (** body bytes (via [Content-Length]) *)
}

(** 8 KiB lines, 64 headers, 1 MiB bodies. *)
val default_limits : limits

(** What to answer before closing: an HTTP status plus a short
    reason. *)
type error = { status : int; reason : string }

(** {1 Readers} *)

(** A buffered byte source. *)
type reader

(** [reader ?limits read] pulls bytes with [read buf off len] (returning
    [0] for end-of-input, like [Unix.read]). *)
val reader : ?limits:limits -> (bytes -> int -> int -> int) -> reader

(** A reader over a fixed string (tests). *)
val of_string : ?limits:limits -> string -> reader

(** [read_request r] parses the next request off the reader.  [`Eof]
    only when the input ends cleanly {e between} requests; end of input
    mid-request is an [`Error] (400).  Limit violations map to 431
    (line/header limits) and 413 (body); [Transfer-Encoding] to 501;
    unsupported versions to 505. *)
val read_request : reader -> [ `Request of request | `Eof | `Error of error ]

(** {1 Requests} *)

(** First value of a (lowercase) header name. *)
val header : request -> string -> string option

(** HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; the
    [Connection] header overrides either way. *)
val keep_alive : request -> bool

(** Percent-decoded [k=v&k2=v2] pairs. *)
val parse_query : string -> (string * string) list

(** {1 Responses} *)

val status_reason : int -> string

(** [response ~status ~body ()] renders a complete HTTP/1.1 response
    with [Content-Length], [Connection: keep-alive|close] and any extra
    [?headers].  [Content-Type] defaults to [application/json]. *)
val response :
  ?headers:(string * string) list ->
  ?content_type:string ->
  ?keep_alive:bool ->
  status:int ->
  body:string ->
  unit ->
  string

(** Client side: a parsed response. *)
type response_msg = {
  status : int;
  reason_phrase : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

val resp_header : response_msg -> string -> string option

(** Parse the next response off a reader ([`Eof] only cleanly between
    responses).  Only [Content-Length] framing is supported; a response
    with neither [Content-Length] nor an empty body is an error. *)
val read_response :
  reader -> [ `Response of response_msg | `Eof | `Error of error ]
