type meth = GET | POST | Other of string

type version = [ `Http_1_0 | `Http_1_1 ]

type request = {
  meth : meth;
  target : string;
  path : string;
  query : (string * string) list;
  version : version;
  headers : (string * string) list;
  body : string;
}

type limits = { max_line : int; max_headers : int; max_body : int }

let default_limits =
  { max_line = 8192; max_headers = 64; max_body = 1024 * 1024 }

type error = { status : int; reason : string }

exception Fail of error

let fail status fmt =
  Printf.ksprintf (fun reason -> raise (Fail { status; reason })) fmt

(* ------------------------------------------------------------------ *)
(* Reader: a refillable buffer over an abstract byte source. *)

type reader = {
  read : bytes -> int -> int -> int;
  buf : Buffer.t;  (* bytes received but not yet consumed *)
  chunk : bytes;
  limits : limits;
  mutable eof : bool;
}

let reader ?(limits = default_limits) read =
  { read; buf = Buffer.create 1024; chunk = Bytes.create 4096; limits;
    eof = false }

let of_string ?limits s =
  let pos = ref 0 in
  reader ?limits (fun b off len ->
      let n = Stdlib.min len (String.length s - !pos) in
      Bytes.blit_string s !pos b off n;
      pos := !pos + n;
      n)

(* Pull one chunk from the source into the buffer; false on EOF. *)
let refill r =
  if r.eof then false
  else begin
    let n = try r.read r.chunk 0 (Bytes.length r.chunk) with _ -> 0 in
    if n <= 0 then begin
      r.eof <- true;
      false
    end
    else begin
      Buffer.add_subbytes r.buf r.chunk 0 n;
      true
    end
  end

(* Take [n] buffered bytes off the front. *)
let consume r n =
  let s = Buffer.sub r.buf 0 n in
  let rest = Buffer.sub r.buf n (Buffer.length r.buf - n) in
  Buffer.clear r.buf;
  Buffer.add_string r.buf rest;
  s

let find_newline r from =
  let contents = Buffer.contents r.buf in
  String.index_from_opt contents from '\n'

(* One line, terminated by LF (CRLF stripped).  [None] on EOF with an
   empty buffer; EOF mid-line or an overlong line raise. *)
let read_line r =
  let rec go from =
    match find_newline r from with
    | Some i ->
      if i + 1 > r.limits.max_line then
        fail 431 "header line exceeds %d bytes" r.limits.max_line;
      let line = consume r (i + 1) in
      let len = String.length line in
      let len = if len >= 2 && line.[len - 2] = '\r' then len - 2 else len - 1 in
      Some (String.sub line 0 len)
    | None ->
      if Buffer.length r.buf > r.limits.max_line then
        fail 431 "header line exceeds %d bytes" r.limits.max_line;
      let from = Buffer.length r.buf in
      if refill r then go from
      else if Buffer.length r.buf = 0 then None
      else fail 400 "connection closed mid-line"
  in
  go 0

let read_exact r n =
  while Buffer.length r.buf < n && refill r do () done;
  if Buffer.length r.buf < n then fail 400 "connection closed mid-body";
  consume r n

(* ------------------------------------------------------------------ *)
(* Tokens. *)

let lowercase = String.lowercase_ascii

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> -1

let percent_decode s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
     | '%' when !i + 2 < n && hex_val s.[!i + 1] >= 0 && hex_val s.[!i + 2] >= 0
       ->
       Buffer.add_char b
         (Char.chr ((hex_val s.[!i + 1] * 16) + hex_val s.[!i + 2]));
       i := !i + 2
     | '+' -> Buffer.add_char b ' '
     | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let parse_query qs =
  if qs = "" then []
  else
    String.split_on_char '&' qs
    |> List.filter_map (fun pair ->
        if pair = "" then None
        else
          match String.index_opt pair '=' with
          | None -> Some (percent_decode pair, "")
          | Some i ->
            Some
              ( percent_decode (String.sub pair 0 i),
                percent_decode
                  (String.sub pair (i + 1) (String.length pair - i - 1)) ))

let split_target target =
  match String.index_opt target '?' with
  | None -> (percent_decode target, [])
  | Some i ->
    ( percent_decode (String.sub target 0 i),
      parse_query (String.sub target (i + 1) (String.length target - i - 1)) )

let parse_version = function
  | "HTTP/1.1" -> `Http_1_1
  | "HTTP/1.0" -> `Http_1_0
  | v -> fail 505 "unsupported protocol version %S" v

let parse_method = function
  | "GET" -> GET
  | "POST" -> POST
  | m ->
    if m = "" || String.exists (fun c -> c <= ' ' || c > '~') m then
      fail 400 "malformed method"
    else Other m

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ m; target; version ] when target <> "" ->
    (parse_method m, target, parse_version version)
  | _ -> fail 400 "malformed request line %S" (String.escaped line)

let parse_header_line line =
  match String.index_opt line ':' with
  | None | Some 0 -> fail 400 "malformed header line %S" (String.escaped line)
  | Some i ->
    let name = String.sub line 0 i in
    if String.exists (fun c -> c <= ' ' || c > '~') name then
      fail 400 "malformed header name %S" (String.escaped name);
    (lowercase name, String.trim (String.sub line (i + 1) (String.length line - i - 1)))

let read_headers r =
  let rec go acc count =
    match read_line r with
    | None -> fail 400 "connection closed inside headers"
    | Some "" -> List.rev acc
    | Some line ->
      if count >= r.limits.max_headers then
        fail 431 "more than %d headers" r.limits.max_headers;
      go (parse_header_line line :: acc) (count + 1)
  in
  go [] 0

let assoc_header name headers = List.assoc_opt (lowercase name) headers

let read_body r headers =
  (match assoc_header "transfer-encoding" headers with
   | Some _ -> fail 501 "transfer encodings are not supported"
   | None -> ());
  match assoc_header "content-length" headers with
  | None -> ""
  | Some v ->
    (match int_of_string_opt (String.trim v) with
     | Some n when n >= 0 ->
       if n > r.limits.max_body then
         fail 413 "body of %d bytes exceeds the %d-byte limit" n
           r.limits.max_body;
       read_exact r n
     | Some _ | None -> fail 400 "malformed content-length %S" v)

(* ------------------------------------------------------------------ *)
(* Requests. *)

let read_request r =
  match read_line r with
  | None -> `Eof
  | Some line ->
    (try
       let meth, target, version = parse_request_line line in
       let headers = read_headers r in
       let body = read_body r headers in
       let path, query = split_target target in
       `Request { meth; target; path; query; version; headers; body }
     with Fail e -> `Error e)
  | exception Fail e -> `Error e

let header req name = assoc_header name req.headers

let keep_alive req =
  match Option.map lowercase (header req "connection") with
  | Some "close" -> false
  | Some "keep-alive" -> true
  | Some _ | None -> req.version = `Http_1_1

(* ------------------------------------------------------------------ *)
(* Responses. *)

let status_reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Content Too Large"
  | 429 -> "Too Many Requests"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | 505 -> "HTTP Version Not Supported"
  | _ -> "Response"

let response ?(headers = []) ?(content_type = "application/json")
    ?(keep_alive = true) ~status ~body () =
  let b = Buffer.create (256 + String.length body) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_reason status));
  Buffer.add_string b (Printf.sprintf "Content-Type: %s\r\n" content_type);
  Buffer.add_string b
    (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  Buffer.add_string b
    (if keep_alive then "Connection: keep-alive\r\n"
     else "Connection: close\r\n");
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Client side. *)

type response_msg = {
  status : int;
  reason_phrase : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

let resp_header resp name = assoc_header name resp.resp_headers

let parse_status_line line =
  match String.split_on_char ' ' line with
  | version :: status :: rest ->
    ignore (parse_version version);
    (match int_of_string_opt status with
     | Some s when s >= 100 && s <= 599 -> (s, String.concat " " rest)
     | Some _ | None -> fail 400 "malformed status %S" status)
  | _ -> fail 400 "malformed status line %S" (String.escaped line)

let read_response r =
  match read_line r with
  | None -> `Eof
  | Some line ->
    (try
       let status, reason_phrase = parse_status_line line in
       let headers = read_headers r in
       let body = read_body r headers in
       `Response { status; reason_phrase; resp_headers = headers;
                   resp_body = body }
     with Fail e -> `Error e)
  | exception Fail e -> `Error e
