module J = Analysis.Json

type model = [ `Lr | `Election | `Coin | `Consensus ]

let model_name = function
  | `Lr -> "lr"
  | `Election -> "election"
  | `Coin -> "coin"
  | `Consensus -> "consensus"

type check_query = {
  model : model;
  n : int;
  g : int;
  k : int;
  topology : string;
  bound : int;
  cap : int;
  max_states : int option;
  sym : string;
  plane : string;
  deadline_ms : int option;
}

type simulate_query = {
  sim_model : model;
  sim_n : int;
  scheduler : string;
  trials : int;
  seed : int;
  within : int option;
  sim_deadline_ms : int option;
}

type lint_query = {
  target : string;
  lint_max_states : int option;
  lint_sym : string;
  lint_deadline_ms : int option;
}

type query =
  | Check of check_query
  | Cert of check_query
  | Simulate of simulate_query
  | Lint of lint_query
  | Stats
  | Health of { sleep_ms : int }
  | Batch of query list

type error = { status : int; code : string; message : string }

let error ~status ~code message = { status; code; message }

let error_body e =
  J.to_string
    (J.Obj
       [ ( "error",
           J.Obj
             [ ("code", J.Str e.code); ("status", J.Int e.status);
               ("message", J.Str e.message) ] ) ])

(* ------------------------------------------------------------------ *)
(* Field extraction.

   Parameters arrive either as GET query pairs (strings) or as a POST
   JSON object; both normalize to a lookup function returning JSON
   values, so the typed readers below serve both forms. *)

exception Reject of error

let reject status code fmt =
  Printf.ksprintf (fun m -> raise (Reject (error ~status ~code m))) fmt

let fields_of_request (req : Http.request) =
  match req.Http.meth with
  | Http.GET -> fun name -> Option.map (fun v -> J.Str v) (List.assoc_opt name req.Http.query)
  | Http.POST ->
    if String.trim req.Http.body = "" then fun _ -> None
    else
      (match J.of_string req.Http.body with
       | Error msg -> reject 400 "SRV102" "malformed JSON body: %s" msg
       | Ok (J.Obj _ as obj) -> fun name -> J.member name obj
       | Ok _ -> reject 400 "SRV102" "request body must be a JSON object")
  | Http.Other m -> reject 405 "SRV101" "method %s is not allowed" m

let int_field fields name ~default =
  match fields name with
  | None -> default
  | Some (J.Int i) -> i
  | Some (J.Str s) ->
    (match int_of_string_opt (String.trim s) with
     | Some i -> i
     | None -> reject 400 "SRV103" "field %S must be an integer" name)
  | Some _ -> reject 400 "SRV103" "field %S must be an integer" name

let opt_int_field fields name =
  match fields name with
  | None | Some J.Null -> None
  | Some _ -> Some (int_field fields name ~default:0)

let str_field fields name ~default =
  match fields name with
  | None -> default
  | Some (J.Str s) -> s
  | Some _ -> reject 400 "SRV103" "field %S must be a string" name

let model_field fields =
  match String.lowercase_ascii (str_field fields "model" ~default:"lr") with
  | "lr" | "lehmann-rabin" | "dining" -> `Lr
  | "election" | "itai-rodeh" -> `Election
  | "coin" | "shared-coin" -> `Coin
  | "consensus" | "ben-or" -> `Consensus
  | other -> reject 404 "SRV104" "unknown model %S" other

let positive name v =
  if v < 1 then reject 400 "SRV103" "field %S must be positive" name;
  v

(* A client deadline: positive milliseconds.  Deliberately NOT a
   canonical-key dimension -- a cached complete body trivially meets any
   deadline, and degraded (SRV122) bodies are never cached. *)
let deadline_field fields =
  Option.map (positive "deadline_ms") (opt_int_field fields "deadline_ms")

let sym_field fields =
  match String.lowercase_ascii (str_field fields "sym" ~default:"off") with
  | ("auto" | "on" | "off") as s -> s
  | other ->
    reject 400 "SRV103" "field \"sym\" must be auto, on or off (got %S)"
      other

(* Like [sym], the plane is a canonical cache-key dimension: its
   default is filled here so an explicit ["interval"] and an omitted
   field land on the same cache entry. *)
let plane_field fields =
  match String.lowercase_ascii (str_field fields "plane" ~default:"interval")
  with
  | ("interval" | "exact") as p -> p
  | other ->
    reject 400 "SRV103" "field \"plane\" must be interval or exact (got %S)"
      other

(* ------------------------------------------------------------------ *)
(* Endpoint dispatch. *)

let check_fields fields =
  let model = model_field fields in
  let topology =
    String.lowercase_ascii (str_field fields "topology" ~default:"ring")
  in
  (match model, topology with
   | `Lr, ("ring" | "line" | "star") -> ()
   | `Lr, other -> reject 400 "SRV103" "unknown topology %S" other
   | _, "ring" -> ()
   | _, other ->
     reject 400 "SRV103" "topology %S applies to the lr model only" other);
  { model;
    n = positive "n" (int_field fields "n" ~default:3);
    g = positive "g" (int_field fields "g" ~default:1);
    k = positive "k" (int_field fields "k" ~default:1);
    topology;
    bound = positive "bound" (int_field fields "bound" ~default:4);
    cap = positive "cap" (int_field fields "cap" ~default:2);
    max_states = Option.map (positive "max_states") (opt_int_field fields "max_states");
    sym = sym_field fields;
    plane = plane_field fields;
    deadline_ms = deadline_field fields
  }

let parse_check fields = Check (check_fields fields)

let parse_simulate fields =
  Simulate
    { sim_model = model_field fields;
      sim_n = positive "n" (int_field fields "n" ~default:8);
      scheduler = str_field fields "scheduler" ~default:"uniform";
      trials = positive "trials" (int_field fields "trials" ~default:2000);
      seed = int_field fields "seed" ~default:1994;
      within = Option.map (positive "within") (opt_int_field fields "within");
      sim_deadline_ms = deadline_field fields
    }

let parse_lint fields =
  Lint
    { target = str_field fields "target" ~default:"lr";
      lint_max_states =
        Option.map (positive "max_states") (opt_int_field fields "max_states");
      lint_sym = sym_field fields;
      lint_deadline_ms = deadline_field fields
    }

let parse_health fields =
  let sleep_ms = int_field fields "sleep_ms" ~default:0 in
  if sleep_ms < 0 || sleep_ms > 5000 then
    reject 400 "SRV103" "sleep_ms must be between 0 and 5000";
  Health { sleep_ms }

(* One /batch element: a JSON object with an ["endpoint"] selector
   (default [/check]) and that endpoint's usual fields.  Only compute
   endpoints batch -- /stats, /health and /batch itself are not
   batchable (the first two are probes, nesting is a loop). *)
let parse_batch_element item =
  let fields name = J.member name item in
  match
    String.lowercase_ascii (str_field fields "endpoint" ~default:"/check")
  with
  | "/check" | "check" -> parse_check fields
  | "/cert" | "cert" -> Cert (check_fields fields)
  | "/simulate" | "simulate" -> parse_simulate fields
  | "/lint" | "lint" -> parse_lint fields
  | other -> reject 400 "SRV103" "endpoint %S is not batchable" other

let max_batch = 64

let parse_batch (req : Http.request) fields =
  (match req.Http.meth with
   | Http.POST -> ()
   | Http.GET | Http.Other _ ->
     reject 405 "SRV101" "/batch requires POST");
  match fields "queries" with
  | None -> reject 400 "SRV103" "field \"queries\" is required"
  | Some (J.Arr []) ->
    reject 400 "SRV103" "field \"queries\" must not be empty"
  | Some (J.Arr items) ->
    if List.length items > max_batch then
      reject 400 "SRV103" "at most %d queries per batch" max_batch;
    Batch
      (List.mapi
         (fun i item ->
            match item with
            | J.Obj _ -> (
                try parse_batch_element item
                with Reject e ->
                  reject e.status e.code "query %d: %s" i e.message)
            | _ -> reject 400 "SRV103" "query %d: must be a JSON object" i)
         items)
  | Some _ -> reject 400 "SRV103" "field \"queries\" must be an array"

let of_request (req : Http.request) =
  try
    let fields = fields_of_request req in
    match req.Http.path with
    | "/check" -> Ok (parse_check fields)
    | "/cert" -> Ok (Cert (check_fields fields))
    | "/simulate" -> Ok (parse_simulate fields)
    | "/lint" -> Ok (parse_lint fields)
    | "/batch" -> Ok (parse_batch req fields)
    | "/stats" -> Ok Stats
    | "/health" | "/" -> Ok (parse_health fields)
    | other -> reject 404 "SRV100" "unknown endpoint %S" other
  with Reject e -> Error e

(* ------------------------------------------------------------------ *)
(* Canonical keys.

   Every dimension the computation reads appears in the key with its
   default filled in, and ceilings the server clamps ([max_states],
   [trials]) are stored {e post-clamp}: a query spelling the server
   default explicitly, one omitting it, and one asking beyond the
   server's cap all compute the same body and now share one cache
   entry. *)

let opt_int = function None -> "" | Some i -> string_of_int i

(* The effective ceiling: the client's ask clamped to the server's cap,
   the cap itself when the client is silent.  With no server cap the
   client value (or the empty default) passes through. *)
let clamped ceiling client =
  match ceiling, client with
  | None, c -> opt_int c
  | Some cap, None -> string_of_int cap
  | Some cap, Some c -> string_of_int (Stdlib.min cap c)

let check_key ~endpoint ?max_states c =
  Printf.sprintf
    "%s?model=%s&n=%d&g=%d&k=%d&topology=%s&bound=%d&cap=%d\
     &max_states=%s&sym=%s&plane=%s"
    endpoint (model_name c.model) c.n c.g c.k c.topology c.bound c.cap
    (clamped max_states c.max_states) c.sym c.plane

let canonical_key ?max_states ?max_trials = function
  | Check c -> Some (check_key ~endpoint:"check" ?max_states c)
  | Cert c -> Some (check_key ~endpoint:"cert" ?max_states c)
  | Simulate s ->
    let trials =
      match max_trials with
      | None -> s.trials
      | Some cap -> Stdlib.min cap s.trials
    in
    Some
      (Printf.sprintf
         "simulate?model=%s&n=%d&scheduler=%s&trials=%d&seed=%d&within=%s"
         (model_name s.sim_model) s.sim_n s.scheduler trials s.seed
         (opt_int s.within))
  | Lint l ->
    Some
      (Printf.sprintf "lint?target=%s&max_states=%s&sym=%s" l.target
         (clamped max_states l.lint_max_states) l.lint_sym)
  (* A batch is a container, not a computation: its elements each have
     a canonical key and cache individually inside the Service; the
     envelope itself is never cached. *)
  | Batch _ | Stats | Health _ -> None
