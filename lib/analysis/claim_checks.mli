(** Static checks over claim derivations and composition plans.

    {!Claim.compose} already refuses to fire at run time when its
    premises fail; these checks surface the same conditions as
    diagnostics, before a proof script runs and on proof {e plans}
    that have not been executed yet, and audit finished derivations
    defensively (a deserialized or hand-patched derivation could
    violate premises the constructors enforce today).

    - CL001: Theorem 3.4 applied -- or planned -- under a schema that
      is not marked execution closed (Definition 3.3), or a planned
      composition whose schemas differ;
    - CL002: a claim (or a node of its derivation) whose [pre] or
      [post] predicate holds of no explored reachable state.  An
      unsatisfiable [pre] makes the claim vacuous; an unreachable
      [post] under a positive probability bound means the underlying
      statement can never have been exercised on this fragment. *)

(** CL001 over finished claims (every derivation node is audited) and
    over a plan of intended compositions. *)
val composition :
  model:string ->
  claims:(string * 's Core.Claim.t) list ->
  plan:(string * 's Core.Claim.t * 's Core.Claim.t) list ->
  Diagnostic.t list

(** CL002 over every node of every claim's derivation, evaluated
    against the explored fragment.  Predicates are audited once per
    name (names are the identity the proof rules use). *)
val satisfiability :
  model:string ->
  claims:(string * 's Core.Claim.t) list ->
  ('s, 'a) Mdp.Arena.t ->
  Diagnostic.t list
