(** A minimal JSON tree and serializer.

    The linter's machine-readable output ([prtb lint --format json])
    must be consumable by CI pipelines without adding a JSON dependency
    to the repository, so this module implements the small fragment we
    need: construction and compact serialization with correct string
    escaping.  No parser is provided (nothing in the system reads JSON
    back). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Compact rendering (no insignificant whitespace), RFC 8259 string
    escaping. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
