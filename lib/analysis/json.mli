(** A minimal JSON tree, serializer and parser.

    The linter's machine-readable output ([prtb lint --format json])
    and the bench baseline ([BENCH_baseline.json], read back by the CI
    regression guard) must be producible and consumable without adding
    a JSON dependency to the repository, so this module implements the
    small fragment we need: construction, compact serialization with
    correct string escaping, and a recursive-descent parser for the
    same fragment. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Num of float  (** non-integral numbers; NaN/inf serialize as null *)
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Compact rendering (no insignificant whitespace), RFC 8259 string
    escaping. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Parse a complete JSON document.  Numbers with a fraction or
    exponent come back as {!Num}, plain integers as {!Int}. *)
val of_string : string -> (t, string) result

(** [member k j] is the value under key [k] when [j] is an object. *)
val member : string -> t -> t option

(** Numeric coercion: [Int] and [Num] only. *)
val to_float_opt : t -> float option
