type t =
  | Null
  | Bool of bool
  | Int of int
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\b' -> Buffer.add_string buf "\\b"
       | '\012' -> Buffer.add_string buf "\\f"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Num f ->
    (* JSON has no NaN/Infinity; fall back to null like most emitters. *)
    if Float.is_finite f then
      Buffer.add_string buf (Printf.sprintf "%.17g" f)
    else Buffer.add_string buf "null"
  | Str s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
         if i > 0 then Buffer.add_char buf ',';
         emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char buf ',';
         Buffer.add_char buf '"';
         escape buf k;
         Buffer.add_string buf "\":";
         emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

let pp fmt j = Format.pp_print_string fmt (to_string j)

(* ------------------------------------------------------------------ *)
(* Parser.  Recursive descent over the same fragment the serializer
   emits; numbers with a fraction or exponent parse as [Num], plain
   integers as [Int].  Added for the bench regression guard, which must
   read a committed BENCH_baseline.json back without growing a JSON
   dependency. *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> parse_error "expected %c at offset %d, got %c" c !pos d
    | None -> parse_error "expected %c at offset %d, got end of input" c !pos
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else parse_error "invalid literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then parse_error "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
          (if !pos >= n then parse_error "unterminated escape";
           let e = s.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
             if !pos + 4 > n then parse_error "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             (match int_of_string_opt ("0x" ^ hex) with
              | None -> parse_error "bad \\u escape %S" hex
              | Some code when code < 0x80 ->
                Buffer.add_char buf (Char.chr code)
              | Some code when code < 0x800 ->
                (* 2-byte UTF-8 *)
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              | Some code ->
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
           | e -> parse_error "unknown escape \\%c" e);
          go ()
        | c -> Buffer.add_char buf c; go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_int = ref true in
    if peek () = Some '-' then advance ();
    while
      match peek () with
      | Some ('0' .. '9') -> true
      | Some ('.' | 'e' | 'E' | '+' | '-') ->
        is_int := false;
        true
      | Some _ | None -> false
    do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if !is_int then
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> parse_error "bad number %S" tok
    else
      match float_of_string_opt tok with
      | Some f -> Num f
      | None -> parse_error "bad number %S" tok
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | Some c -> parse_error "expected , or ] got %c" c
          | None -> parse_error "unterminated array"
        in
        Arr (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | Some c -> parse_error "expected , or } got %c" c
          | None -> parse_error "unterminated object"
        in
        Obj (fields [])
      end
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok v
  | exception Parse_error m -> Error m

(* Convenience accessors for readers of parsed documents. *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Num _ | Str _ | Arr _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Num f -> Some f
  | Null | Bool _ | Str _ | Arr _ | Obj _ -> None
