type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\b' -> Buffer.add_string buf "\\b"
       | '\012' -> Buffer.add_string buf "\\f"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Str s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
         if i > 0 then Buffer.add_char buf ',';
         emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char buf ',';
         Buffer.add_char buf '"';
         escape buf k;
         Buffer.add_string buf "\":";
         emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

let pp fmt j = Format.pp_print_string fmt (to_string j)
