(** The model linter: static well-formedness analysis for probabilistic
    automata and claim derivations.

    Every proof rule in the paper is sound only under side conditions
    the rest of this repository takes on faith: steps must lead into
    genuine probability spaces (Definition 2.1), {!Core.Claim.compose}
    requires an execution-closed schema (Theorem 3.4), and time-bound
    checking assumes time diverges under every adversary.  This
    subsystem verifies those premises {e statically}, over the explored
    reachable fragment of a model, and reports violations as
    structured {!Diagnostic.t}s with stable codes.

    Entry points: build a {!config} per model with {!val-config}, then
    {!run} it (or {!run_explored} to reuse an existing exploration).
    The catalogue of diagnostic codes with triggering examples lives in
    [docs/LINTS.md]; the CLI front end is [prtb lint]. *)

module Json = Json
module Diagnostic = Diagnostic
module Report = Report
module Symmetry = Symmetry
module Pa_checks = Pa_checks
module Time_checks = Time_checks
module Claim_checks = Claim_checks

(** What to lint: a named automaton plus the optional model knowledge
    that unlocks the deeper checks. *)
type ('s, 'a) config

(** [config ~name pa] with:

    - [is_tick]: the time-passage action; enables PA020 (zero-time
      cycles) and PA021 (tick divergence).  Omitted, those checks are
      recorded as skipped;
    - [accept_terminal]: classifies reachable stuck states; with it,
      unaccepted terminals are PA010 errors, without it any terminal is
      a PA010 warning;
    - [claims]: labelled finished derivations to audit (CL001, CL002);
    - [plan]: labelled {e intended} compositions, checked against the
      premises of Theorem 3.4 before any proof script runs (CL001);
    - [fault_view]: for fault-wrapped automata, the pair
      [(faulted, effective_proc)] handed to
      {!Pa_checks.fault_isolation}; enables PA012 (a crashed or
      stalled process's original step still enabled);
    - [symmetry]: the model's declared symmetry {!Symmetry.spec};
      enables PA030/PA031/PA032 via {!Pa_checks.symmetry}.  Set
      [sym_reduced] when the exploration handed to {!run_explored}
      was orbit-reduced through {!Symmetry.canonicalizer}, so the
      verifier expands orbits for full coverage and does not advise
      reduction of an already-reduced fragment;
    - [max_states]: exploration bound for this model (default
      [2_000_000]); exceeding it yields a PA000 warning carrying the
      partial interned-state count instead of an exception;
    - [max_equal_pairs]: comparison budget for the PA003 sampling
      (default [1_000_000] pairs). *)
val config :
  ?is_tick:('a -> bool) ->
  ?accept_terminal:('s -> bool) ->
  ?claims:(string * 's Core.Claim.t) list ->
  ?plan:(string * 's Core.Claim.t * 's Core.Claim.t) list ->
  ?fault_view:(('s -> int list) * ('a -> int option)) ->
  ?symmetry:('s, 'a) Symmetry.spec ->
  ?sym_reduced:bool ->
  ?max_states:int ->
  ?max_equal_pairs:int ->
  name:string ->
  ('s, 'a) Core.Pa.t ->
  ('s, 'a) config

(** Explore the model and run the full battery. *)
val run : ('s, 'a) config -> Report.t

(** Run the battery against an exploration already at hand (e.g. a
    proof instance's); the config's [max_states] still bounds the
    derived exploration PA021 performs.  Pass [?arena] to reuse an
    existing compilation of the same fragment (it must have been
    compiled with this config's [is_tick]); omitted, the fragment is
    compiled once here. *)
val run_explored :
  ?arena:('s, 'a) Mdp.Arena.t ->
  ('s, 'a) config -> ('s, 'a) Mdp.Explore.t -> Report.t
