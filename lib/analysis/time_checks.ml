module D = Proba.Dist
module A = Mdp.Arena

let witness_limit = 5

let show_state pa s = Format.asprintf "%a" (Core.Pa.pp_state pa) s

(* ------------------------------------------------------------------ *)
(* PA020 *)

let zero_time_cycles ~model pa arena =
  match Mdp.Zeno.check arena with
  | Mdp.Zeno.Ok -> []
  | Mdp.Zeno.Probabilistic_zero_time_cycle component ->
    let shown =
      List.filteri (fun k _ -> k < witness_limit) component
      |> List.map (fun i -> show_state pa (A.state arena i))
      |> String.concat ", "
    in
    let extra = List.length component - witness_limit in
    [ Diagnostic.v PA020 Error ~model
        ~witness:
          (Printf.sprintf "cycle through {%s}%s" shown
             (if extra > 0 then Printf.sprintf " and %d more state(s)" extra
              else ""))
        "probabilistic zero-time cycle: probability mass can cycle without \
         consuming time, so the exact finite-horizon engine cannot \
         converge and time-bound claims are meaningless here" ]

(* ------------------------------------------------------------------ *)
(* PA021 *)

(* The derived automaton: every tick edge (and every terminal state)
   falls into an absorbing sink.  "Some adversary avoids ticking
   forever with positive probability from s" is then exactly "s is not
   in always_reaches {sink}". *)

type 's wstate = St of 's | Sink
type 'a waction = Act of 'a | Stop

let tick_divergence ~model ~is_tick ~max_states pa =
  let equal_w a b =
    match (a, b) with
    | St a, St b -> Core.Pa.equal_state pa a b
    | Sink, Sink -> true
    | _ -> false
  in
  let wrapped =
    Core.Pa.make
      ~equal_state:equal_w
      ~hash_state:(function
        | St s -> Core.Pa.hash_state pa s
        | Sink -> 0x7b3f)
      ~pp_state:(fun fmt -> function
        | St s -> Core.Pa.pp_state pa fmt s
        | Sink -> Format.pp_print_string fmt "<ticked>")
      ~start:(List.map (fun s -> St s) (Core.Pa.start pa))
      ~enabled:(function
        | Sink -> []
        | St s ->
          (match Core.Pa.enabled pa s with
           | [] -> [ { Core.Pa.action = Stop; dist = D.point Sink } ]
           | steps ->
             List.map
               (fun { Core.Pa.action; dist } ->
                  if is_tick action then
                    { Core.Pa.action = Act action; dist = D.point Sink }
                  else
                    { Core.Pa.action = Act action;
                      dist = D.map ~equal:equal_w (fun s' -> St s') dist })
               steps))
      ()
  in
  let warena = A.of_pa ~max_states wrapped in
  let target =
    Array.init (A.num_states warena) (fun i ->
        match A.state warena i with Sink -> true | St _ -> false)
  in
  let always = Mdp.Qualitative.always_reaches warena ~target in
  let diags = ref [] in
  for i = Array.length always - 1 downto 0 do
    if not always.(i) then
      match A.state warena i with
      | Sink -> ()
      | St s ->
        diags :=
          Diagnostic.v PA021 Error ~model ~witness:(show_state pa s)
            "tick divergence fails: from this reachable state some \
             adversary avoids performing a tick forever with positive \
             probability, so no finite time bound can cover its executions"
          :: !diags
  done;
  Diagnostic.cap ~limit:witness_limit !diags
