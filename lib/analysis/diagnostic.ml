type severity = Error | Warning | Info

type code =
  | PA000
  | PA001
  | PA002
  | PA003
  | PA010
  | PA011
  | PA012
  | PA020
  | PA021
  | PA030
  | PA031
  | PA032
  | CL001
  | CL002

type t = {
  code : code;
  severity : severity;
  model : string;
  message : string;
  witness : string option;
}

let v ?witness code severity ~model message =
  { code; severity; model; message; witness }

let code_name = function
  | PA000 -> "PA000"
  | PA001 -> "PA001"
  | PA002 -> "PA002"
  | PA003 -> "PA003"
  | PA010 -> "PA010"
  | PA011 -> "PA011"
  | PA012 -> "PA012"
  | PA020 -> "PA020"
  | PA021 -> "PA021"
  | PA030 -> "PA030"
  | PA031 -> "PA031"
  | PA032 -> "PA032"
  | CL001 -> "CL001"
  | CL002 -> "CL002"

let code_summary = function
  | PA000 -> "analysis incomplete: the model could not be fully explored"
  | PA001 -> "step distribution is sub- or super-stochastic"
  | PA002 -> "zero-probability or duplicate outcome in a step distribution"
  | PA003 -> "equal_state and hash_state disagree on reachable states"
  | PA010 -> "reachable deadlock or unclassified terminal state"
  | PA011 -> "action signature inconsistent under equal_action"
  | PA012 -> "a faulted process's original step is still enabled"
  | PA020 -> "probabilistic zero-time cycle: time can stall"
  | PA021 -> "an adversary can block tick forever (time need not diverge)"
  | PA030 -> "declared permutation is not an automorphism of the automaton"
  | PA031 -> "predicate is not invariant under the verified symmetry group"
  | PA032 -> "verified symmetric model explored without orbit reduction"
  | CL001 -> "compose applied under a schema that is not execution closed"
  | CL002 -> "claim predicate unsatisfiable on the explored fragment"

let all_codes =
  [ PA000; PA001; PA002; PA003; PA010; PA011; PA012; PA020; PA021; PA030;
    PA031; PA032; CL001; CL002 ]

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let compare_severity a b = compare (severity_rank a) (severity_rank b)
let is_error d = d.severity = Error

let cap ~limit ds =
  let n = List.length ds in
  if n <= limit then ds
  else
    let kept = List.filteri (fun i _ -> i < limit) ds in
    match kept with
    | [] -> []
    | d :: _ ->
      kept
      @ [ { code = d.code; severity = Info; model = d.model;
            message =
              Printf.sprintf "%d further %s diagnostic(s) suppressed"
                (n - limit) (code_name d.code);
            witness = None } ]

let pp fmt d =
  Format.fprintf fmt "@[<v 2>%s %s [%s]: %s" (code_name d.code)
    (severity_name d.severity) d.model d.message;
  (match d.witness with
   | None -> ()
   | Some w -> Format.fprintf fmt "@,witness: %s" w);
  Format.fprintf fmt "@]"

let to_json d =
  Json.Obj
    [ ("code", Json.Str (code_name d.code));
      ("severity", Json.Str (severity_name d.severity));
      ("model", Json.Str d.model);
      ("message", Json.Str d.message);
      ("witness",
       match d.witness with None -> Json.Null | Some w -> Json.Str w) ]
