type model_stats = {
  model : string;
  states : int;
  choices : int;
  branches : int;
  skipped : string list;
}

type t = {
  stats : model_stats list;
  diagnostics : Diagnostic.t list;
}

let empty = { stats = []; diagnostics = [] }
let make stats diagnostics = { stats = [ stats ]; diagnostics }

let merge a b =
  { stats = a.stats @ b.stats; diagnostics = a.diagnostics @ b.diagnostics }

let merge_all = List.fold_left merge empty

let diagnostics t = t.diagnostics
let stats t = t.stats

let count severity t =
  List.length
    (List.filter (fun d -> d.Diagnostic.severity = severity) t.diagnostics)

let errors = count Diagnostic.Error
let warnings = count Diagnostic.Warning
let infos = count Diagnostic.Info
let has_errors t = errors t > 0

let mem code t = List.exists (fun d -> d.Diagnostic.code = code) t.diagnostics

let mem_error code t =
  List.exists
    (fun d ->
       d.Diagnostic.code = code && d.Diagnostic.severity = Diagnostic.Error)
    t.diagnostics

let exit_code ?(strict = false) t =
  if has_errors t || (strict && warnings t > 0) then 1 else 0

let by_severity t =
  List.stable_sort
    (fun a b ->
       Diagnostic.compare_severity a.Diagnostic.severity
         b.Diagnostic.severity)
    t.diagnostics

let pp_text fmt t =
  List.iter
    (fun s ->
       Format.fprintf fmt "model %-12s %d states, %d choices, %d branches"
         s.model s.states s.choices s.branches;
       List.iter (fun reason -> Format.fprintf fmt "@,  skipped: %s" reason)
         s.skipped;
       Format.pp_print_cut fmt ())
    t.stats;
  (match by_severity t with
   | [] -> ()
   | ds ->
     Format.pp_print_cut fmt ();
     List.iter (fun d -> Format.fprintf fmt "%a@," Diagnostic.pp d) ds);
  Format.fprintf fmt "@,summary: %d error(s), %d warning(s), %d info"
    (errors t) (warnings t) (infos t)

let to_json t =
  Json.Obj
    [ ("version", Json.Int 1);
      ("models",
       Json.Arr
         (List.map
            (fun s ->
               Json.Obj
                 [ ("name", Json.Str s.model);
                   ("states", Json.Int s.states);
                   ("choices", Json.Int s.choices);
                   ("branches", Json.Int s.branches);
                   ("skipped",
                    Json.Arr (List.map (fun r -> Json.Str r) s.skipped)) ])
            t.stats));
      ("diagnostics", Json.Arr (List.map Diagnostic.to_json (by_severity t)));
      ("summary",
       Json.Obj
         [ ("errors", Json.Int (errors t));
           ("warnings", Json.Int (warnings t));
           ("infos", Json.Int (infos t)) ]) ]
