module Q = Proba.Rational
module D = Proba.Dist
module A = Mdp.Arena

let witness_limit = 8

let show_state pa s = Format.asprintf "%a" (Core.Pa.pp_state pa) s
let show_action pa a = Format.asprintf "%a" (Core.Pa.pp_action pa) a

(* ------------------------------------------------------------------ *)
(* PA001 / PA002 *)

let stochasticity ~model pa arena =
  let pa001 = ref [] and pa002 = ref [] in
  let n = A.num_states arena in
  for i = 0 to n - 1 do
    let s = A.state arena i in
    List.iter
      (fun { Core.Pa.action; dist } ->
         let support = D.support dist in
         let where =
           lazy
             (Printf.sprintf "step %s from state %s" (show_action pa action)
                (show_state pa s))
         in
         let total = Q.sum (List.map snd support) in
         let negative = List.exists (fun (_, w) -> Q.sign w < 0) support in
         if negative || not (Q.equal total Q.one) then
           pa001 :=
             Diagnostic.v PA001 Error ~model
               ~witness:(Lazy.force where)
               (Printf.sprintf
                  "outcome weights sum to %s, not 1%s: not a probability \
                   space (Definition 2.1)"
                  (Q.to_string total)
                  (if negative then " (and some weight is negative)" else ""))
             :: !pa001;
         if List.exists (fun (_, w) -> Q.is_zero w) support then
           pa002 :=
             Diagnostic.v PA002 Warning ~model
               ~witness:(Lazy.force where)
               "distribution carries a zero-probability outcome"
             :: !pa002;
         let rec dup = function
           | [] -> None
           | (x, _) :: rest ->
             if List.exists (fun (y, _) -> Core.Pa.equal_state pa x y) rest
             then Some x
             else dup rest
         in
         match dup support with
         | None -> ()
         | Some x ->
           pa002 :=
             Diagnostic.v PA002 Warning ~model
               ~witness:(Lazy.force where)
               (Printf.sprintf
                  "outcome %s occurs more than once in the same distribution \
                   (weights should be merged)"
                  (show_state pa x))
             :: !pa002)
      (Core.Pa.enabled pa s)
  done;
  Diagnostic.cap ~limit:witness_limit (List.rev !pa001)
  @ Diagnostic.cap ~limit:witness_limit (List.rev !pa002)

(* ------------------------------------------------------------------ *)
(* PA003 *)

let equality_coherence ~model ~max_pairs pa arena =
  let n = A.num_states arena in
  let budget = ref max_pairs in
  let found = ref None in
  (try
     for i = 0 to n - 1 do
       for j = i + 1 to n - 1 do
         if !budget <= 0 then raise Exit;
         decr budget;
         if Core.Pa.equal_state pa (A.state arena i) (A.state arena j)
         then begin
           found := Some (i, j);
           raise Exit
         end
       done
     done
   with Exit -> ());
  let total_pairs = n * (n - 1) / 2 in
  let sampled = max_pairs - !budget in
  let note =
    if !found = None && sampled < total_pairs then
      [ Diagnostic.v PA003 Info ~model
          (Printf.sprintf
             "equal/hash coherence sampled %d of %d state pairs (raise the \
              pair budget for full coverage)"
             sampled total_pairs) ]
    else []
  in
  (match !found with
   | None -> []
   | Some (i, j) ->
     [ Diagnostic.v PA003 Error ~model
         ~witness:
           (Printf.sprintf "state #%d = %s vs state #%d = %s" i
              (show_state pa (A.state arena i))
              j
              (show_state pa (A.state arena j)))
         "two reachable states are identified by equal_state yet were \
          interned separately: hash_state disagrees with equal_state, so \
          explored state counts and probabilities are unreliable" ])
  @ note

(* ------------------------------------------------------------------ *)
(* PA010 *)

let deadlocks ~model ~accept_terminal pa arena =
  let diags = ref [] in
  let n = A.num_states arena in
  for i = 0 to n - 1 do
    if A.num_steps_of arena i = 0 then begin
      let s = A.state arena i in
      match accept_terminal with
      | Some ok when ok s -> ()
      | Some _ ->
        diags :=
          Diagnostic.v PA010 Error ~model ~witness:(show_state pa s)
            "reachable deadlock: no enabled step and not an accepted \
             terminal state"
          :: !diags
      | None ->
        diags :=
          Diagnostic.v PA010 Warning ~model ~witness:(show_state pa s)
            "reachable terminal state (no enabled step); pass \
             accept_terminal to classify it as intended or as a deadlock"
          :: !diags
    end
  done;
  Diagnostic.cap ~limit:witness_limit (List.rev !diags)

(* ------------------------------------------------------------------ *)
(* PA012 *)

let fault_isolation ~model ~faulted ~effective_proc pa arena =
  let diags = ref [] in
  let n = A.num_states arena in
  for i = 0 to n - 1 do
    let s = A.state arena i in
    match faulted s with
    | [] -> ()
    | down ->
      for k = arena.A.step_off.(i) to arena.A.step_off.(i + 1) - 1 do
        let action = arena.A.actions.(k) in
        match effective_proc action with
        | Some p when List.mem p down ->
          diags :=
            Diagnostic.v PA012 Error ~model
              ~witness:
                (Printf.sprintf "step %s of process %d in state %s"
                   (show_action pa action) p (show_state pa s))
              (Printf.sprintf
                 "process %d is crashed or stalled here, yet one of its \
                  original steps is still enabled: the fault wrapper \
                  leaks base behaviour" p)
            :: !diags
        | Some _ | None -> ()
      done
  done;
  Diagnostic.cap ~limit:witness_limit (List.rev !diags)

(* ------------------------------------------------------------------ *)
(* PA011 *)

let max_distinct_actions = 4096

let signature ~model pa arena =
  let diags = ref [] in
  (* (representative, classification, already reported) per
     equal_action class, in occurrence order *)
  let reps : ('a * bool * bool ref) list ref = ref [] in
  let n = A.num_states arena in
  (try
     for i = 0 to n - 1 do
       for k = arena.A.step_off.(i) to arena.A.step_off.(i + 1) - 1 do
         let action = arena.A.actions.(k) in
         (match
              List.find_opt
                (fun (b, _, _) -> Core.Pa.equal_action pa action b)
                !reps
            with
            | None ->
              if List.length !reps >= max_distinct_actions then raise Exit;
              reps :=
                (action, Core.Pa.is_external pa action, ref false) :: !reps
            | Some (b, ext_b, reported) ->
              let ext_a = Core.Pa.is_external pa action in
              if ext_a <> ext_b && not !reported then begin
                reported := true;
                diags :=
                  Diagnostic.v PA011 Warning ~model
                    ~witness:
                      (Printf.sprintf "%s (%s) vs %s (%s)"
                         (show_action pa action)
                         (if ext_a then "external" else "internal")
                         (show_action pa b)
                         (if ext_b then "external" else "internal"))
                    "actions identified by equal_action are classified \
                     differently by is_external: the action signature is \
                     not a partition (Definition 2.1)"
                  :: !diags
              end)
       done
     done
   with Exit -> ());
  Diagnostic.cap ~limit:witness_limit (List.rev !diags)

(* PA030/PA031/PA032: delegated to the symmetry verifier; this wrapper
   exists so the battery in [Analysis.run_explored] stays one flat
   pipeline of [~model ... -> Diagnostic.t list]-shaped checks. *)
let symmetry ~model ?reduced ?max_orbit ?max_checks spec expl =
  Symmetry.verify ~model ?reduced ?max_orbit ?max_checks spec expl
