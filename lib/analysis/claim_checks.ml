module Q = Proba.Rational
module C = Core.Claim
module A = Mdp.Arena

let witness_limit = 8

(* ------------------------------------------------------------------ *)
(* CL001 *)

let composition ~model ~claims ~plan =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  List.iter
    (fun (label, claim) ->
       C.iter_derivation
         (fun node ->
            match C.rule node with
            | C.Composed _ ->
              let sch = C.schema node in
              if not (Core.Schema.execution_closed sch) then
                add
                  (Diagnostic.v CL001 Error ~model
                     ~witness:(Format.asprintf "%a" C.pp node)
                     (Printf.sprintf
                        "claim %s: Theorem 3.4 (compose) used under schema \
                         %s, which is not marked execution closed \
                         (Definition 3.3 premise)"
                        label (Core.Schema.name sch)))
            | _ -> ())
         claim)
    claims;
  List.iter
    (fun (label, c1, c2) ->
       let s1 = C.schema c1 and s2 = C.schema c2 in
       if not (Core.Schema.same s1 s2) then
         add
           (Diagnostic.v CL001 Error ~model
              (Printf.sprintf
                 "planned composition %s: schemas %s and %s differ, so \
                  Theorem 3.4 does not apply"
                 label (Core.Schema.name s1) (Core.Schema.name s2)))
       else if not (Core.Schema.execution_closed s1) then
         add
           (Diagnostic.v CL001 Error ~model
              (Printf.sprintf
                 "planned composition %s: schema %s is not marked execution \
                  closed (Definition 3.3), so Theorem 3.4 does not apply"
                 label (Core.Schema.name s1)))
       else if not (Core.Pred.same (C.post c1) (C.pre c2)) then
         add
           (Diagnostic.v CL001 Warning ~model
              (Printf.sprintf
                 "planned composition %s: post-set %s of the first claim is \
                  not the pre-set %s of the second; compose will refuse \
                  (insert a certified inclusion first)"
                 label
                 (Core.Pred.name (C.post c1))
                 (Core.Pred.name (C.pre c2)))))
    plan;
  Diagnostic.cap ~limit:witness_limit (List.rev !diags)

(* ------------------------------------------------------------------ *)
(* CL002 *)

let satisfiability ~model ~claims arena =
  let n = A.num_states arena in
  let satisfiable =
    (* one verdict per predicate name: names are the identity the proof
       rules compose by *)
    let memo = Hashtbl.create 16 in
    fun pred ->
      let name = Core.Pred.name pred in
      match Hashtbl.find_opt memo name with
      | Some b -> b
      | None ->
        let rec scan i =
          if i >= n then false
          else Core.Pred.mem pred (A.state arena i) || scan (i + 1)
        in
        let b = scan 0 in
        Hashtbl.add memo name b;
        b
  in
  let reported = Hashtbl.create 16 in
  let diags = ref [] in
  let check label node =
    let side which pred =
      let name = Core.Pred.name pred in
      if (not (satisfiable pred)) && not (Hashtbl.mem reported (which, name))
      then begin
        Hashtbl.add reported (which, name) ();
        let vacuous_pre =
          Printf.sprintf
            "claim %s: pre-set %s holds of no explored reachable state -- \
             the statement is vacuous on this fragment"
            label name
        and dead_post =
          Printf.sprintf
            "claim %s: post-set %s holds of no explored reachable state \
             although the claim promises it with probability %s"
            label name
            (Q.to_string (C.prob node))
        in
        match which with
        | `Pre -> diags := Diagnostic.v CL002 Error ~model vacuous_pre :: !diags
        | `Post ->
          if Q.sign (C.prob node) > 0 then
            diags := Diagnostic.v CL002 Error ~model dead_post :: !diags
          else
            diags :=
              Diagnostic.v CL002 Warning ~model
                (Printf.sprintf
                   "claim %s: post-set %s holds of no explored reachable \
                    state (harmless at probability 0, but suspicious)"
                   label name)
              :: !diags
      end
    in
    side `Pre (C.pre node);
    side `Post (C.post node)
  in
  List.iter
    (fun (label, claim) -> C.iter_derivation (check label) claim)
    claims;
  Diagnostic.cap ~limit:witness_limit (List.rev !diags)
