(** Static well-formedness checks over a probabilistic automaton and
    its compiled reachable fragment (the {!Mdp.Arena}).

    Each check returns the diagnostics it found (already capped to a
    readable number per code); {!Analysis.run} orchestrates them.  The
    checks verify the structural premises of Definition 2.1 that the
    rest of the system takes on faith:

    - {!stochasticity} (PA001/PA002): every enabled step leads into a
      genuine finite probability space -- weights positive, no
      duplicate outcomes, total exactly 1 in exact rationals;
    - {!equality_coherence} (PA003): [equal_state] and [hash_state]
      agree on the reachable fragment (disagreement silently splits
      states during exploration and invalidates every downstream
      number);
    - {!deadlocks} (PA010): no reachable state is stuck unless the
      model declares it an accepted terminal;
    - {!signature} (PA011): [is_external] classifies [equal_action]-
      identified actions consistently. *)

(** [stochasticity ~model pa arena] checks every enabled step of every
    reachable state.  PA001 ([Error]): weights negative or not summing
    to 1.  PA002 ([Warning]): zero-weight outcomes, or outcomes
    duplicated up to [equal_state]. *)
val stochasticity :
  model:string ->
  ('s, 'a) Core.Pa.t -> ('s, 'a) Mdp.Arena.t -> Diagnostic.t list

(** [equality_coherence ~model ~max_pairs pa arena] samples up to
    [max_pairs] pairs of distinct reachable state indices; finding a
    pair that [equal_state] identifies is a PA003 [Error] (the
    exploration table separated them, so [hash_state] must have
    disagreed).  Adds an [Info] note when the budget truncated the
    scan. *)
val equality_coherence :
  model:string -> max_pairs:int ->
  ('s, 'a) Core.Pa.t -> ('s, 'a) Mdp.Arena.t -> Diagnostic.t list

(** [deadlocks ~model ~accept_terminal pa arena]: reachable states with
    no enabled step are PA010 [Error]s when [accept_terminal] is
    provided and rejects them, PA010 [Warning]s when no classifier was
    provided (the model may or may not intend them). *)
val deadlocks :
  model:string -> accept_terminal:('s -> bool) option ->
  ('s, 'a) Core.Pa.t -> ('s, 'a) Mdp.Arena.t -> Diagnostic.t list

(** [fault_isolation ~model ~faulted ~effective_proc pa arena]: for
    fault-wrapped automata.  [faulted s] lists the processes the
    wrapper considers crashed or stalled in [s]; [effective_proc a]
    names the process whose {e original} (base-automaton) step [a] is
    -- injection actions map to [None].  Any reachable state that
    still enables an original step of a faulted process is a PA012
    [Error]: the wrapper is leaking behaviour the fault model says is
    impossible, so every "degraded bound" computed on it is
    meaningless. *)
val fault_isolation :
  model:string -> faulted:('s -> int list) ->
  effective_proc:('a -> int option) ->
  ('s, 'a) Core.Pa.t -> ('s, 'a) Mdp.Arena.t -> Diagnostic.t list

(** [signature ~model pa arena]: PA011 [Warning] when two actions
    occurring on reachable steps are identified by [equal_action] but
    classified differently by [is_external]. *)
val signature :
  model:string ->
  ('s, 'a) Core.Pa.t -> ('s, 'a) Mdp.Arena.t -> Diagnostic.t list

(** [symmetry ~model spec expl] runs the PA030/PA031/PA032 battery of
    {!Symmetry.verify} (same optional arguments, same result). *)
val symmetry :
  model:string ->
  ?reduced:bool ->
  ?max_orbit:int ->
  ?max_checks:int ->
  ('s, 'a) Symmetry.spec ->
  ('s, 'a) Mdp.Explore.t ->
  Diagnostic.t list * Symmetry.certificate option
