module Json = Json
module Diagnostic = Diagnostic
module Report = Report
module Symmetry = Symmetry
module Pa_checks = Pa_checks
module Time_checks = Time_checks
module Claim_checks = Claim_checks

type ('s, 'a) config = {
  name : string;
  pa : ('s, 'a) Core.Pa.t;
  is_tick : ('a -> bool) option;
  accept_terminal : ('s -> bool) option;
  claims : (string * 's Core.Claim.t) list;
  plan : (string * 's Core.Claim.t * 's Core.Claim.t) list;
  fault_view : (('s -> int list) * ('a -> int option)) option;
  symmetry : ('s, 'a) Symmetry.spec option;
  sym_reduced : bool;
  max_states : int;
  max_equal_pairs : int;
}

let config ?is_tick ?accept_terminal ?(claims = []) ?(plan = [])
    ?fault_view ?symmetry ?(sym_reduced = false)
    ?(max_states = 2_000_000) ?(max_equal_pairs = 1_000_000)
    ~name pa =
  { name; pa; is_tick; accept_terminal; claims; plan; fault_view;
    symmetry; sym_reduced; max_states; max_equal_pairs }

let run_explored ?arena cfg expl =
  let model = cfg.name in
  (* One compiled substrate feeds every state-space check; a caller
     holding an arena already (e.g. a proof instance) passes it in and
     nothing is recompiled.  A caller-provided arena must have been
     compiled from [expl] with this config's [is_tick]. *)
  let arena =
    match arena with
    | Some a -> a
    | None -> Mdp.Arena.compile ?is_tick:cfg.is_tick expl
  in
  let skipped = ref [] in
  let time_diags =
    match cfg.is_tick with
    | None ->
      skipped :=
        [ "PA020/PA021 (no is_tick classifier for this model)" ];
      []
    | Some is_tick ->
      let zeno = Time_checks.zero_time_cycles ~model cfg.pa arena in
      let divergence =
        (* the derived exploration re-traverses the (possibly broken)
           distributions, so shield it *)
        match
          Time_checks.tick_divergence ~model ~is_tick
            ~max_states:cfg.max_states cfg.pa
        with
        | diags -> diags
        | exception Mdp.Explore.Too_many_states n ->
          [ Diagnostic.v PA000 Warning ~model
              (Printf.sprintf
                 "PA021 skipped: the tick-redirected exploration exceeded \
                  %d states" n) ]
        | exception Proba.Dist.Not_a_distribution msg ->
          [ Diagnostic.v PA000 Warning ~model
              (Printf.sprintf
                 "PA021 skipped: malformed distribution (%s); fix PA001 \
                  first" msg) ]
      in
      zeno @ divergence
  in
  let diags =
    Pa_checks.stochasticity ~model cfg.pa arena
    @ Pa_checks.equality_coherence ~model ~max_pairs:cfg.max_equal_pairs
        cfg.pa arena
    @ Pa_checks.deadlocks ~model ~accept_terminal:cfg.accept_terminal cfg.pa
        arena
    @ Pa_checks.signature ~model cfg.pa arena
    @ (match cfg.fault_view with
       | None -> []
       | Some (faulted, effective_proc) ->
         Pa_checks.fault_isolation ~model ~faulted ~effective_proc cfg.pa
           arena)
    @ time_diags
    @ (match cfg.symmetry with
       | None -> []
       | Some spec ->
         fst (Pa_checks.symmetry ~model ~reduced:cfg.sym_reduced spec expl))
    @ Claim_checks.composition ~model ~claims:cfg.claims ~plan:cfg.plan
    @ Claim_checks.satisfiability ~model ~claims:cfg.claims arena
  in
  Report.make
    { Report.model;
      states = Mdp.Arena.num_states arena;
      choices = Mdp.Arena.num_choices arena;
      branches = Mdp.Arena.num_branches arena;
      skipped = !skipped }
    diags

let run cfg =
  let budget = Core.Budget.v ~max_states:cfg.max_states () in
  let part = Mdp.Explore.run_budgeted ~budget cfg.pa in
  if part.Mdp.Explore.complete then
    run_explored cfg part.Mdp.Explore.fragment
  else begin
    (* The fragment is a sound under-approximation, but its frontier
       states carry no steps, so the state-space checks would drown in
       spurious PA010s; report the partial count and audit only the
       claims. *)
    let interned = Mdp.Explore.num_states part.Mdp.Explore.fragment in
    Report.make
      { Report.model = cfg.name; states = interned; choices = 0;
        branches = 0;
        skipped = [ "all state-space checks (exploration bound hit)" ] }
      ([ Diagnostic.v PA000 Warning ~model:cfg.name
           (Printf.sprintf
              "exploration stopped after interning %d states (%s); \
               state-space checks skipped (claims were still audited for \
               composability)"
              interned
              (Option.value part.Mdp.Explore.stopped
                 ~default:"budget exhausted")) ]
       @ Claim_checks.composition ~model:cfg.name ~claims:cfg.claims
           ~plan:cfg.plan)
  end
