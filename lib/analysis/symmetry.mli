(** Static symmetry analysis with certified automorphisms (PA03x).

    A model {e declares} candidate permutations of its state and action
    spaces (ring rotation, process transposition, topology
    automorphisms); this pass {e verifies} each one is an automorphism
    of the probabilistic automaton by checking transition-distribution
    equivariance over the explored fragment: for every checked state
    [s] and generator [g], the multiset of enabled steps at [g s] must
    equal the [g]-image of the multiset at [s], with distributions
    compared outcome-by-outcome at exact rational weights, and the
    start set must be closed under [g].

    Verified generators yield a {!certificate}; on top of it,
    {!canonicalizer} gives the interning function that makes
    [Mdp.Explore] build the orbit quotient, which compiles through the
    ordinary [Mdp.Arena] CSR path.  Diagnostics:

    - [PA030] (error): a declared permutation is not an automorphism.
    - [PA031] (error): a claim/reachability predicate is not invariant
      under the verified group -- orbit reduction would be unsound.
    - [PA032] (info): the model is certifiably symmetric but was
      explored unreduced; reports the measured compression ratio. *)

(** How surfaces request reduction: [Off] never reduces, [On] demands
    a certificate and fails ({!Not_certified}) without one, [Auto]
    reduces when certification succeeds and silently falls back to the
    unreduced exploration otherwise. *)
type mode = Auto | On | Off

val mode_to_string : mode -> string
val mode_of_string : string -> mode option

(** A candidate automorphism: a state permutation together with the
    matching action permutation.  Both must be bijections; the
    verifier detects most violations (via orbit overflow or
    equivariance failure) but cannot prove bijectivity of functions on
    an infinite state space. *)
type ('s, 'a) generator = private {
  gen_name : string;
  on_state : 's -> 's;
  on_action : 'a -> 'a;
}

val generator :
  name:string -> on_state:('s -> 's) -> on_action:('a -> 'a) ->
  ('s, 'a) generator

(** What a model declares: group generators, plus the named predicates
    (claim pre/post sets, reachability targets) that any sound
    reduction must leave invariant. *)
type ('s, 'a) spec = {
  generators : ('s, 'a) generator list;
  invariant_preds : (string * ('s -> bool)) list;
}

val spec :
  ?preds:(string * ('s -> bool)) list ->
  ('s, 'a) generator list -> ('s, 'a) spec

(** Raised by {!require} (and by surfaces running with [--sym on])
    when certification fails. *)
exception Not_certified of string

(** [orbit ~equal gens s]: closure of [s] under the generators.
    Raises [Invalid_argument] past [max_orbit] (default [40_320]
    = 8!), which indicates a non-bijective declaration. *)
val orbit :
  ?max_orbit:int -> equal:('s -> 's -> bool) ->
  ('s, 'a) generator list -> 's -> 's list

(** [canonicalizer ~equal spec] maps each state to its orbit
    representative: the minimum of the orbit under [compare] (default
    [Stdlib.compare]).  With no generators this is the identity.
    Intended as the [canon] argument of [Mdp.Explore.run]. *)
val canonicalizer :
  ?compare:('s -> 's -> int) -> ?max_orbit:int ->
  equal:('s -> 's -> bool) -> ('s, 'a) spec -> 's -> 's

(** Evidence that the group was verified on a fragment: per-generator
    spot-check fingerprints (a deterministic hash of the states each
    generator was checked at, for run-to-run comparison), coverage
    counts, and whether the fragment itself was orbit-reduced.
    [full_states] is the size of the union of the orbits of the
    fragment's states -- for a reduced fragment of a verified group
    this equals the unreduced reachable count. *)
type certificate = {
  cert_generators : (string * string) list;  (** (name, fingerprint) *)
  states_checked : int;
  full_states : int;
  reduced : bool;
  preds_checked : string list;
}

val certificate_to_json : certificate -> Json.t

(** [verify ~model spec expl] checks every generator and predicate
    over the fragment and returns the diagnostics plus the certificate
    when all checks pass ([None] under any PA030/PA031, or when there
    are no generators).

    [reduced] says [expl] was explored through a {!canonicalizer}: the
    verifier then expands each representative's full orbit and checks
    every member (sound coverage of the unreduced reachable set), and
    PA032 is suppressed.  On unreduced fragments larger than
    [max_checks] (state, generator) evaluations, states are
    stride-sampled; the certificate records actual coverage. *)
val verify :
  model:string ->
  ?reduced:bool ->
  ?max_orbit:int ->
  ?max_checks:int ->
  ('s, 'a) spec ->
  ('s, 'a) Mdp.Explore.t ->
  Diagnostic.t list * certificate option

(** [explored ~model ~mode spec pa] is the one-call surface used by
    proof builders: [Off] explores unreduced with no certificate;
    [On]/[Auto] explore the orbit quotient through the
    {!canonicalizer} and certify it with {!verify} (orbit-expanded,
    so the certificate covers the unreduced reachable set).  When
    certification fails, [Auto] silently rebuilds unreduced, [On]
    raises {!Not_certified}. *)
val explored :
  model:string ->
  mode:mode ->
  ?max_states:int ->
  ?max_orbit:int ->
  ?max_checks:int ->
  ('s, 'a) spec ->
  ('s, 'a) Core.Pa.t ->
  ('s, 'a) Mdp.Explore.t * certificate option

(** [require ~model result] unwraps a {!verify} result, raising
    {!Not_certified} with the concatenated diagnostics when no
    certificate was produced.  Surfaces use it to implement
    [--sym on]. *)
val require :
  model:string ->
  Diagnostic.t list * certificate option ->
  Diagnostic.t list * certificate
