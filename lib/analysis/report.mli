(** Lint reports: diagnostics plus per-model exploration statistics.

    A report aggregates the findings for one or several lint targets
    (reports {!merge} monoidally, so [prtb lint] can fold one report
    per model into a single run summary).  Rendering is either
    human-readable text or compact JSON for CI consumption; the exit
    code policy lives here so the CLI and the test suite agree on
    it. *)

type model_stats = {
  model : string;
  states : int;  (** reachable states explored *)
  choices : int;  (** (state, step) pairs *)
  branches : int;  (** probabilistic branches *)
  skipped : string list;  (** checks not run, with reasons *)
}

type t

val empty : t

(** [make stats diags] is a single-model report. *)
val make : model_stats -> Diagnostic.t list -> t

val merge : t -> t -> t
val merge_all : t list -> t

val diagnostics : t -> Diagnostic.t list
val stats : t -> model_stats list

val errors : t -> int
val warnings : t -> int
val infos : t -> int
val has_errors : t -> bool

(** [mem code t]: some diagnostic with that code is present (at any
    severity). *)
val mem : Diagnostic.code -> t -> bool

(** [mem_error code t]: an error-severity diagnostic with that code is
    present. *)
val mem_error : Diagnostic.code -> t -> bool

(** 0 when nothing fails; 1 when errors are present (or, with
    [~strict:true], when warnings are). *)
val exit_code : ?strict:bool -> t -> int

(** Human-readable rendering: per-model statistics, diagnostics grouped
    most severe first, and a one-line summary. *)
val pp_text : Format.formatter -> t -> unit

val to_json : t -> Json.t
