(** Time-divergence checks for digital-clock models.

    The paper's time-bound statements [U -t->_p U'] presuppose that
    time actually advances: Definition 3.1 measures elapsed time along
    executions, and both proof rules and the exact engines degenerate
    when an execution can perform infinitely many steps in bounded
    time.  Two failure modes are checked:

    - {!zero_time_cycles} (PA020): a cycle of non-tick steps carrying
      probabilistic branching, which makes the finite-horizon layer
      fixpoint asymptotic (wraps {!Mdp.Zeno} as a diagnostic; the arena must carry the model's tick mask);
    - {!tick_divergence} (PA021): some adversary can, with positive
      probability, avoid scheduling a [tick] forever -- i.e. the
      minimum probability of ever ticking is below 1 somewhere
      reachable, so time need not diverge under every adversary.  This
      is decided by a qualitative (probability-1) reachability query
      ({!Mdp.Qualitative.always_reaches}) on a derived automaton in
      which every tick edge is redirected to an absorbing [<ticked>]
      sink; terminal states are also redirected, so deadlocks are
      reported once (by PA010), not twice. *)

(** PA020 ([Error]): wraps {!Mdp.Zeno.check}; the witness lists the
    offending strongly connected component. *)
val zero_time_cycles :
  model:string ->
  ('s, 'a) Core.Pa.t -> ('s, 'a) Mdp.Arena.t -> Diagnostic.t list

(** PA021 ([Error]): one diagnostic per reachable state (capped) from
    which some adversary avoids ticking forever with positive
    probability.  Performs its own exploration of the derived
    automaton, bounded by [max_states]. *)
val tick_divergence :
  model:string -> is_tick:('a -> bool) -> max_states:int ->
  ('s, 'a) Core.Pa.t -> Diagnostic.t list
