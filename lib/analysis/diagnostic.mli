(** Structured linter diagnostics.

    Every finding of the model linter is a {!t}: a stable {!code}
    identifying the well-formedness condition that was violated, a
    {!severity}, the name of the model it was found in, a
    human-readable message, and (when available) a pretty-printed
    witness (a state, an action, or a cycle).  Codes are stable across
    releases so that CI configuration and suppression lists can refer
    to them; see [docs/LINTS.md] for the catalogue with triggering
    examples. *)

type severity = Error | Warning | Info

(** Stable diagnostic codes.

    [PA*] codes concern a probabilistic automaton and its reachable
    fragment; [CL*] codes concern claim derivations and composition
    plans.  [PA000] is infrastructural: the model could not be (fully)
    analyzed, so other checks may be incomplete. *)
type code =
  | PA000  (** analysis incomplete (state bound hit, malformed input) *)
  | PA001  (** step distribution is sub- or super-stochastic *)
  | PA002  (** zero-probability or duplicate outcome in a distribution *)
  | PA003  (** [equal_state]/[hash_state] disagree on reachable states *)
  | PA010  (** reachable deadlock / unclassified terminal state *)
  | PA011  (** action signature inconsistent under [equal_action] *)
  | PA012  (** fault isolation: a crashed/stalled process still steps *)
  | PA020  (** probabilistic zero-time cycle (time can stall) *)
  | PA021  (** an adversary can block [tick] forever *)
  | PA030  (** a declared state/action permutation is not a PA automorphism *)
  | PA031  (** a predicate is not invariant under the verified group *)
  | PA032  (** symmetric model explored without orbit reduction (advisory) *)
  | CL001  (** compose premise: schema not execution closed *)
  | CL002  (** claim predicate unsatisfiable on the explored fragment *)

type t = {
  code : code;
  severity : severity;
  model : string;  (** which lint target the finding belongs to *)
  message : string;
  witness : string option;  (** pretty-printed witness, if any *)
}

val v : ?witness:string -> code -> severity -> model:string -> string -> t

(** ["PA001"], ["CL002"], ... *)
val code_name : code -> string

(** One-line statement of the condition the code checks. *)
val code_summary : code -> string

val all_codes : code list
val severity_name : severity -> string

(** [Error] < [Warning] < [Info] (most severe first). *)
val compare_severity : severity -> severity -> int

val is_error : t -> bool

(** [cap ~limit ds] keeps the first [limit] diagnostics and replaces
    the remainder, if any, with a single [Info] note stating how many
    further diagnostics of that code were suppressed.  Keeps lint
    output readable on pathological models with thousands of identical
    findings. *)
val cap : limit:int -> t list -> t list

val pp : Format.formatter -> t -> unit
val to_json : t -> Json.t
