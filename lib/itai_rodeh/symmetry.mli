(** Declared symmetries of the Itai-Rodeh election automaton.

    The start state is uniform (every process must flip), so the full
    symmetric group acts on the phase array; the declared generators
    are the adjacent process transpositions, which generate it.  The
    composition ladder's rungs ([at_most k]) count active processes
    and are registered as the invariant predicates. *)

val generators :
  Automaton.params ->
  (Automaton.state, Automaton.action) Analysis.Symmetry.generator list

val spec :
  ?extra:(string * (Automaton.state -> bool)) list ->
  Automaton.params ->
  (Automaton.state, Automaton.action) Analysis.Symmetry.spec
