let apply_state pi (s : Automaton.state) =
  let r = Array.copy s in
  Array.iteri (fun i p -> r.(pi.(i)) <- p) s;
  r

let apply_action pi = function
  | Automaton.Tick -> Automaton.Tick
  | Automaton.Flip i -> Automaton.Flip pi.(i)

let transposition n a b =
  Array.init n (fun i -> if i = a then b else if i = b then a else i)

(* Adjacent transpositions generate the full symmetric group: the
   start state is uniform, so every process permutation is a candidate
   automorphism. *)
let generators (params : Automaton.params) =
  let n = params.Automaton.n in
  List.init (n - 1) (fun a ->
      let pi = transposition n a (a + 1) in
      Analysis.Symmetry.generator
        ~name:(Printf.sprintf "swap(%d,%d)" a (a + 1))
        ~on_state:(apply_state pi) ~on_action:(apply_action pi))

let pred p = (Core.Pred.name p, fun s -> Core.Pred.mem p s)

let spec ?(extra = []) (params : Automaton.params) =
  let rungs =
    List.init params.Automaton.n (fun k -> pred (Automaton.at_most (k + 1)))
  in
  Analysis.Symmetry.spec ~preds:(rungs @ extra) (generators params)
