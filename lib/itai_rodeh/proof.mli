(** Time-bound analysis of the leader election, by the paper's method.

    The phase statements form a ladder on the number of active
    processes:

    {v at_most(k)  -1->_{1/2}  at_most(k-1)        for k = n, ..., 2 v}

    each discharged by exact model checking over all (clock-encoded)
    adversaries; Theorem 3.4 then composes them into

    {v at_most(n) -(n-1)->_{2^-(n-1)} leader v}

    and geometric-trials reasoning gives an expected election time of at
    most [2 (n-1)] units. *)

type instance = {
  params : Automaton.params;
  expl : (Automaton.state, Automaton.action) Mdp.Explore.t;
  arena : (Automaton.state, Automaton.action) Mdp.Arena.t;
      (** [expl] compiled once with the model's tick mask. *)
  sym : Analysis.Symmetry.certificate option;
      (** present iff the fragment is the certified orbit quotient *)
}

(** [sym] (default [Off]) requests orbit-reduced exploration under the
    full process-permutation group ({!Symmetry.spec}). *)
val build :
  ?max_states:int -> ?g:int -> ?k:int -> ?sym:Analysis.Symmetry.mode ->
  n:int -> unit -> instance

type arrow = {
  label : string;
  time : Proba.Rational.t;
  prob : Proba.Rational.t;
  attained : Proba.Rational.t;
  pre_states : int;
  claim : Automaton.state Core.Claim.t option;
}

(** The ladder [k = n, ..., 2]. *)
val arrows : instance -> arrow list

(** [at_most(n) -(n-1)->_{2^-(n-1)} at_most(1)] via Theorem 3.4. *)
val composed : instance -> (Automaton.state Core.Claim.t, string) result

(** Exact min probability of electing within [n-1] time units (the
    direct counterpart of {!composed}). *)
val direct_bound : instance -> Proba.Rational.t

(** The derived bound [sum_k time_k / prob_k = 2 (n-1)] on the expected
    election time. *)
val expected_bound : n:int -> Core.Expected.t

(** Worst-case expected election time measured on the MDP (units). *)
val max_expected_time : instance -> float

(** Every adversary elects a leader almost surely. *)
val liveness_holds : instance -> bool
