module Q = Proba.Rational

type instance = {
  params : Automaton.params;
  expl : (Automaton.state, Automaton.action) Mdp.Explore.t;
  arena : (Automaton.state, Automaton.action) Mdp.Arena.t;
  sym : Analysis.Symmetry.certificate option;
}

let build ?max_states ?(g = 1) ?(k = 1) ?(sym = Analysis.Symmetry.Off) ~n
    () =
  let params = { Automaton.n; g; k } in
  let expl, cert =
    Analysis.Symmetry.explored ~model:"itai_rodeh" ~mode:sym ?max_states
      (Symmetry.spec params) (Automaton.make params)
  in
  { params; expl; sym = cert;
    arena = Mdp.Arena.compile ~is_tick:Automaton.is_tick expl }

type arrow = {
  label : string;
  time : Q.t;
  prob : Q.t;
  attained : Q.t;
  pre_states : int;
  claim : Automaton.state Core.Claim.t option;
}

let schema = Core.Schema.unit_time

let rung inst k =
  let result =
    Mdp.Checker.check_arrow inst.arena
      ~granularity:inst.params.Automaton.g ~schema
      ~pre:(Automaton.at_most k)
      ~post:(Automaton.at_most (k - 1))
      ~time:Q.one ~prob:Q.half
  in
  { label = Printf.sprintf "L%d" k;
    time = Q.one; prob = Q.half;
    attained = result.Mdp.Checker.attained;
    pre_states = result.Mdp.Checker.pre_states;
    claim = result.Mdp.Checker.claim }

let rec downfrom k = if k < 2 then [] else k :: downfrom (k - 1)

let arrows inst = List.map (rung inst) (downfrom inst.params.Automaton.n)

let composed inst =
  let claims =
    List.map
      (fun k ->
         let a = rung inst k in
         match a.claim with
         | Some c -> Ok c
         | None ->
           Error
             (Printf.sprintf "rung %s attained only %s" a.label
                (Q.to_string a.attained)))
      (downfrom inst.params.Automaton.n)
  in
  let rec sequence = function
    | [] -> Ok []
    | Ok x :: rest -> Result.map (fun xs -> x :: xs) (sequence rest)
    | Error e :: _ -> Error e
  in
  match sequence claims with
  | Error e -> Error e
  | Ok [] -> Error "ring too small: no rungs"
  | Ok claims ->
    (try Ok (Core.Claim.compose_all claims)
     with Core.Claim.Rule_violation msg -> Error msg)

let leader_pred = Automaton.at_most 1

let direct_bound inst =
  let target = Mdp.Arena.indicator inst.arena leader_pred in
  let ticks =
    Core.Timed.within ~granularity:inst.params.Automaton.g
      ~time:(Q.of_int (inst.params.Automaton.n - 1))
  in
  let values = Mdp.Finite_horizon.min_reach inst.arena ~target ~ticks in
  let best, _, _ =
    Mdp.Checker.min_prob_over inst.arena values
      (Automaton.at_most inst.params.Automaton.n)
  in
  best

let expected_bound ~n =
  let per_rung k =
    Core.Expected.constant
      ~label:(Printf.sprintf "E[at_most %d -> at_most %d] <= t/p = 2" k (k - 1))
      Q.two
  in
  Core.Expected.sum ~label:"E[election]" (List.map per_rung (downfrom n))

let max_expected_time inst =
  let target = Mdp.Arena.indicator inst.arena leader_pred in
  let values =
    Mdp.Expected_time.max_expected_ticks inst.arena ~target ()
  in
  let worst = Array.fold_left Float.max 0.0 values in
  worst /. float_of_int inst.params.Automaton.g

let liveness_holds inst =
  let target = Mdp.Arena.indicator inst.arena leader_pred in
  let always = Mdp.Qualitative.always_reaches inst.arena ~target in
  Array.for_all (fun b -> b) always
