module Q = Proba.Rational
module D = Proba.Dist
module LR = Lehmann_rabin
module IR = Itai_rodeh
module SC = Shared_coin
module BO = Ben_or
module Race = Race

(* ------------------------------------------------------------------ *)
(* Memoized builders.

   Every surface (prtb subcommands, the verification server, the lint
   targets, the experiment harness, the benchmarks) resolves case-study
   instances through these functions, so within one process invocation
   each (model, parameters) pair is explored and compiled exactly once
   no matter how many surfaces touch it.

   The registry is domain-safe: [prtb serve] workers hit it
   concurrently.  One mutex guards all tables and counters; builds run
   OUTSIDE the lock (so distinct keys explore in parallel) with the key
   marked in [building], and domains asking for an in-flight key wait
   on [built_cond].  The result is the build-once guarantee under
   contention: N domains requesting the same key perform exactly one
   exploration and one compile (asserted by the multi-domain hammer in
   test/test_models.ml).

   Caching is optionally bounded: [set_capacity (Some bytes)] turns the
   memo tables into one LRU with per-instance costs estimated from the
   compiled arena size.  The server wires [--cache-mb] here; the CLI
   default stays unbounded (process lifetimes are one query long). *)

let mu = Mutex.create ()
let built_cond = Condition.create ()

let builds_counter = ref 0
let hits_counter = ref 0
let evictions_counter = ref 0
let clock = ref 0
let total_cost = ref 0
let capacity_ref : int option ref = ref None

(* One row per cached instance, across all typed tables: LRU metadata
   plus a closure that removes the instance from its typed table. *)
type meta = { cost : int; mutable last : int; remove : unit -> unit }

let metas : (string, meta) Hashtbl.t = Hashtbl.create 32
let building : (string, unit) Hashtbl.t = Hashtbl.create 8

let next_tick () =
  incr clock;
  !clock

(* Called with [mu] held. *)
let evict_over_capacity () =
  match !capacity_ref with
  | None -> ()
  | Some cap ->
    while !total_cost > cap && Hashtbl.length metas > 0 do
      let oldest =
        Hashtbl.fold
          (fun key m acc ->
             match acc with
             | Some (_, m') when m'.last <= m.last -> acc
             | Some _ | None -> Some (key, m))
          metas None
      in
      match oldest with
      | None -> ()
      | Some (key, m) ->
        Hashtbl.remove metas key;
        m.remove ();
        total_cost := !total_cost - m.cost;
        incr evictions_counter
    done

let set_capacity cap =
  Mutex.lock mu;
  capacity_ref := cap;
  evict_over_capacity ();
  Mutex.unlock mu

(* Rough retained size of an instance whose arena interns [states]
   states: CSR rows, the interned state values and the memo overhead,
   all order-of-magnitude -- the LRU needs proportionality, not
   precision. *)
let approx_cost ~states = 4096 + (512 * states)

let memo (type v) (cache : (string, v) Hashtbl.t) ~key ~(cost : v -> int)
    (build : unit -> v) : v =
  Mutex.lock mu;
  let rec obtain () =
    match Hashtbl.find_opt cache key with
    | Some v ->
      incr hits_counter;
      (match Hashtbl.find_opt metas key with
       | Some m -> m.last <- next_tick ()
       | None -> ());
      Mutex.unlock mu;
      v
    | None ->
      if Hashtbl.mem building key then begin
        Condition.wait built_cond mu;
        obtain ()
      end
      else begin
        Hashtbl.add building key ();
        Mutex.unlock mu;
        let result =
          try Ok (build ()) with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock mu;
        Hashtbl.remove building key;
        Condition.broadcast built_cond;
        match result with
        | Error (e, bt) ->
          Mutex.unlock mu;
          Printexc.raise_with_backtrace e bt
        | Ok v ->
          incr builds_counter;
          Hashtbl.replace cache key v;
          let c = cost v in
          Hashtbl.replace metas key
            { cost = c;
              last = next_tick ();
              remove = (fun () -> Hashtbl.remove cache key) };
          total_cost := !total_cost + c;
          evict_over_capacity ();
          Mutex.unlock mu;
          v
      end
  in
  obtain ()

(* Seed the cache with an instance built elsewhere (an arena snapshot
   loaded at daemon startup).  No build happens here so [builds] stays
   put -- the CI snapshot smoke asserts [explorations: 0, compiles: 0]
   on the first served query, which only holds if preloaded entries are
   indistinguishable from built ones on the lookup path.  A key that is
   already cached or mid-build keeps the existing/raced instance;
   preloading respects the LRU capacity like any insert. *)
let preload_into (type v) (cache : (string, v) Hashtbl.t) ~key ~cost
    (v : v) =
  Mutex.lock mu;
  if Hashtbl.mem cache key || Hashtbl.mem building key then begin
    Mutex.unlock mu;
    false
  end
  else begin
    Hashtbl.replace cache key v;
    Hashtbl.replace metas key
      { cost;
        last = next_tick ();
        remove = (fun () -> Hashtbl.remove cache key) };
    total_cost := !total_cost + cost;
    evict_over_capacity ();
    Mutex.unlock mu;
    true
  end

let opt_int = function None -> "" | Some m -> string_of_int m
let sym_str = Analysis.Symmetry.mode_to_string

let lr_cache : (string, LR.Proof.instance) Hashtbl.t = Hashtbl.create 8

let lr_key ~max_states ~g ~k ~sym ~n =
  Printf.sprintf "lr?n=%d&g=%d&k=%d&max_states=%s&sym=%s" n g k
    (opt_int max_states) (sym_str sym)

let lr_cost i = approx_cost ~states:(Mdp.Arena.num_states i.LR.Proof.arena)

let lr ?max_states ?(g = 1) ?(k = 1) ?(sym = Analysis.Symmetry.Off) ~n () =
  memo lr_cache
    ~key:(lr_key ~max_states ~g ~k ~sym ~n)
    ~cost:lr_cost
    (fun () -> LR.Proof.build ?max_states ~g ~k ~sym ~n ())

let preload_lr ?max_states ~g ~k ~sym ~n inst =
  preload_into lr_cache
    ~key:(lr_key ~max_states ~g ~k ~sym ~n)
    ~cost:(lr_cost inst) inst

let lr_topo_cache : (string, LR.Proof.topo_instance) Hashtbl.t =
  Hashtbl.create 8

let lr_topo_key ~max_states ~g ~k ~sym ~topo =
  Printf.sprintf "lr-topo?topo=%s&g=%d&k=%d&max_states=%s&sym=%s"
    (LR.Topology.name topo) g k (opt_int max_states) (sym_str sym)

let lr_topo_cost i =
  approx_cost ~states:(Mdp.Arena.num_states i.LR.Proof.tarena)

let lr_topo ?max_states ?(g = 1) ?(k = 1) ?(sym = Analysis.Symmetry.Off)
    ~topo () =
  memo lr_topo_cache
    ~key:(lr_topo_key ~max_states ~g ~k ~sym ~topo)
    ~cost:lr_topo_cost
    (fun () -> LR.Proof.build_topo ?max_states ~g ~k ~sym ~topo ())

let preload_lr_topo ?max_states ~g ~k ~sym ~topo inst =
  preload_into lr_topo_cache
    ~key:(lr_topo_key ~max_states ~g ~k ~sym ~topo)
    ~cost:(lr_topo_cost inst) inst

let election_cache : (string, IR.Proof.instance) Hashtbl.t = Hashtbl.create 8

let election_key ~max_states ~g ~k ~sym ~n =
  Printf.sprintf "election?n=%d&g=%d&k=%d&max_states=%s&sym=%s" n g k
    (opt_int max_states) (sym_str sym)

let election_cost i =
  approx_cost ~states:(Mdp.Arena.num_states i.IR.Proof.arena)

let election ?max_states ?(g = 1) ?(k = 1) ?(sym = Analysis.Symmetry.Off)
    ~n () =
  memo election_cache
    ~key:(election_key ~max_states ~g ~k ~sym ~n)
    ~cost:election_cost
    (fun () -> IR.Proof.build ?max_states ~g ~k ~sym ~n ())

let preload_election ?max_states ~g ~k ~sym ~n inst =
  preload_into election_cache
    ~key:(election_key ~max_states ~g ~k ~sym ~n)
    ~cost:(election_cost inst) inst

let coin_cache : (string, SC.Proof.instance) Hashtbl.t = Hashtbl.create 8

let coin_key ~max_states ~g ~k ~sym ~n ~bound =
  Printf.sprintf "coin?n=%d&bound=%d&g=%d&k=%d&max_states=%s&sym=%s" n bound
    g k (opt_int max_states) (sym_str sym)

let coin_cost i = approx_cost ~states:(Mdp.Arena.num_states i.SC.Proof.arena)

let coin ?max_states ?(g = 1) ?(k = 1) ?(sym = Analysis.Symmetry.Off) ~n
    ~bound () =
  memo coin_cache
    ~key:(coin_key ~max_states ~g ~k ~sym ~n ~bound)
    ~cost:coin_cost
    (fun () -> SC.Proof.build ?max_states ~g ~k ~sym ~n ~bound ())

let preload_coin ?max_states ~g ~k ~sym ~n ~bound inst =
  preload_into coin_cache
    ~key:(coin_key ~max_states ~g ~k ~sym ~n ~bound)
    ~cost:(coin_cost inst) inst

let consensus_cache : (string, BO.Proof.instance) Hashtbl.t = Hashtbl.create 8

let consensus_key ~max_states ~g ~k ~sym ~n ~f ~cap ~initial =
  let bits =
    String.concat "" (List.map (fun b -> if b then "1" else "0")
                        (Array.to_list initial))
  in
  Printf.sprintf
    "consensus?n=%d&f=%d&cap=%d&initial=%s&g=%d&k=%d&max_states=%s\
     &sym=%s" n f cap bits g k (opt_int max_states) (sym_str sym)

let consensus_cost i =
  approx_cost ~states:(Mdp.Arena.num_states i.BO.Proof.arena)

let consensus ?max_states ?(g = 1) ?(k = 1) ?(sym = Analysis.Symmetry.Off)
    ~n ~f ~cap ~initial () =
  memo consensus_cache
    ~key:(consensus_key ~max_states ~g ~k ~sym ~n ~f ~cap ~initial)
    ~cost:consensus_cost
    (fun () -> BO.Proof.build ?max_states ~g ~k ~sym ~n ~f ~cap ~initial ())

let preload_consensus ?max_states ~g ~k ~sym ~n ~f ~cap ~initial inst =
  preload_into consensus_cache
    ~key:(consensus_key ~max_states ~g ~k ~sym ~n ~f ~cap ~initial)
    ~cost:(consensus_cost inst) inst

type stats = {
  explorations : int;
  compiles : int;
  builds : int;
  cache_hits : int;
  evictions : int;
  cached_entries : int;
  cached_bytes : int;
}

let stats () =
  Mutex.lock mu;
  let s =
    { explorations = Mdp.Explore.explorations ();
      compiles = Mdp.Arena.compiles ();
      builds = !builds_counter;
      cache_hits = !hits_counter;
      evictions = !evictions_counter;
      cached_entries = Hashtbl.length metas;
      cached_bytes = !total_cost }
  in
  Mutex.unlock mu;
  s

let pp_stats fmt s =
  Format.fprintf fmt
    "registry: explorations: %d, compiles: %d, builds: %d, cache hits: %d, \
     evictions: %d"
    s.explorations s.compiles s.builds s.cache_hits s.evictions

(* ------------------------------------------------------------------ *)
(* The walker of examples/quickstart.ml, registered here so the lint
   gate also covers the automaton shape the tutorial teaches. *)

module Walker = struct
  type state = Done | Walk of { c : int; b : int }
  type action = Tick | Flip

  let is_tick = function Tick -> true | Flip -> false

  let enabled = function
    | Done -> [ { Core.Pa.action = Tick; dist = D.point Done } ]
    | Walk { c; b } ->
      let tick =
        if c > 0 then
          [ { Core.Pa.action = Tick;
              dist = D.point (Walk { c = c - 1; b = 1 }) } ]
        else []
      in
      let flip =
        if b > 0 then
          [ { Core.Pa.action = Flip;
              dist = D.coin Done (Walk { c = 1; b = b - 1 }) } ]
        else []
      in
      tick @ flip

  let pa =
    Core.Pa.make
      ~pp_state:(fun fmt -> function
        | Done -> Format.pp_print_string fmt "done"
        | Walk { c; b } -> Format.fprintf fmt "walk(c=%d,b=%d)" c b)
      ~pp_action:(fun fmt a ->
          Format.pp_print_string fmt
            (match a with Tick -> "tick" | Flip -> "flip"))
      ~start:[ Walk { c = 1; b = 1 } ]
      ~enabled ()
end

(* ------------------------------------------------------------------ *)
(* Claim extraction from the proof modules *)

let lr_claims inst =
  let arrows =
    List.filter_map
      (fun a ->
         Option.map (fun c -> (a.LR.Proof.label, c)) a.LR.Proof.claim)
      (LR.Proof.arrows inst)
  in
  match LR.Proof.composed inst with
  | Ok c -> arrows @ [ ("composed", c) ]
  | Error _ -> arrows

let lr_topo_claims inst =
  let arrows =
    List.filter_map
      (fun a ->
         Option.map (fun c -> (a.LR.Proof.label, c)) a.LR.Proof.claim)
      (LR.Proof.arrows_topo inst)
  in
  match LR.Proof.composed_topo inst with
  | Ok c -> arrows @ [ ("composed", c) ]
  | Error _ -> arrows

let ir_claims inst =
  let arrows =
    List.filter_map
      (fun a ->
         Option.map (fun c -> (a.IR.Proof.label, c)) a.IR.Proof.claim)
      (IR.Proof.arrows inst)
  in
  match IR.Proof.composed inst with
  | Ok c -> arrows @ [ ("composed", c) ]
  | Error _ -> arrows

let sc_claims inst =
  let arrows =
    List.filter_map
      (fun a ->
         Option.map (fun c -> (a.SC.Proof.label, c)) a.SC.Proof.claim)
      (SC.Proof.arrows inst)
  in
  match SC.Proof.composed inst with
  | Ok c -> arrows @ [ ("composed", c) ]
  | Error _ -> arrows

(* ------------------------------------------------------------------ *)
(* Lint runners.  Each resolves its instance through the memoized
   builders above and hands the instance's arena to the analysis, so a
   process that both checks and lints a model explores and compiles it
   once.

   Every symmetry-declaring model also hands its declared spec to the
   analysis, so [prtb lint] verifies the generators (PA030), the
   predicate invariance (PA031) and nudges unreduced-but-symmetric runs
   (PA032) alongside the classic PA checks.  [sym] selects the
   exploration mode (the certificate gating the quotient is
   re-derived inside the analysis pass; lint targets are small enough
   that the duplicated verification is in the noise). *)

let lint_lr ~max_states ?sym () =
  let inst = lr ~max_states ?sym ~n:3 () in
  Analysis.run_explored ~arena:inst.LR.Proof.arena
    (Analysis.config ~name:"lr" ~is_tick:LR.Automaton.is_tick
       ~claims:(lr_claims inst) ~max_states
       ~symmetry:(LR.Symmetry.ring ~n:3 ())
       ~sym_reduced:(inst.LR.Proof.sym <> None)
       (Mdp.Explore.automaton inst.LR.Proof.expl))
    inst.LR.Proof.expl

let lint_lr_topo name topo ~max_states ?sym () =
  let inst = lr_topo ~max_states ?sym ~topo () in
  Analysis.run_explored ~arena:inst.LR.Proof.tarena
    (Analysis.config ~name ~is_tick:LR.Automaton.is_tick
       ~claims:(lr_topo_claims inst) ~max_states
       ~symmetry:(LR.Symmetry.spec topo)
       ~sym_reduced:(inst.LR.Proof.tsym <> None)
       (Mdp.Explore.automaton inst.LR.Proof.texpl))
    inst.LR.Proof.texpl

let lint_election ~max_states ?sym () =
  let inst = election ~max_states ?sym ~n:3 () in
  Analysis.run_explored ~arena:inst.IR.Proof.arena
    (Analysis.config ~name:"election" ~is_tick:IR.Automaton.is_tick
       ~claims:(ir_claims inst) ~max_states
       ~symmetry:(IR.Symmetry.spec inst.IR.Proof.params)
       ~sym_reduced:(inst.IR.Proof.sym <> None)
       (Mdp.Explore.automaton inst.IR.Proof.expl))
    inst.IR.Proof.expl

let lint_coin ~max_states ?sym () =
  let inst = coin ~max_states ?sym ~n:2 ~bound:3 () in
  Analysis.run_explored ~arena:inst.SC.Proof.arena
    (Analysis.config ~name:"coin" ~is_tick:SC.Automaton.is_tick
       ~claims:(sc_claims inst) ~max_states
       ~symmetry:(SC.Symmetry.spec inst.SC.Proof.params)
       ~sym_reduced:(inst.SC.Proof.sym <> None)
       (Mdp.Explore.automaton inst.SC.Proof.expl))
    inst.SC.Proof.expl

let lint_consensus ~max_states ?sym () =
  let n = 3 and f = 1 and cap = 2 in
  let initial = Array.init n (fun i -> i = n - 1) in
  let inst = consensus ~max_states ?sym ~n ~f ~cap ~initial () in
  let arrow =
    BO.Proof.decision_arrow inst ~rounds:cap ~prob:(Q.pow Q.half n)
  in
  let claims =
    match arrow.BO.Proof.claim with
    | Some c -> [ (arrow.BO.Proof.label, c) ]
    | None -> []
  in
  Analysis.run_explored ~arena:inst.BO.Proof.arena
    (Analysis.config ~name:"consensus" ~is_tick:BO.Automaton.is_tick
       ~claims ~max_states
       ~symmetry:(BO.Symmetry.spec inst.BO.Proof.params ~initial)
       ~sym_reduced:(inst.BO.Proof.sym <> None)
       (Mdp.Explore.automaton inst.BO.Proof.expl))
    inst.BO.Proof.expl

let lint_walker ~max_states ?sym:_ () =
  Analysis.run
    (Analysis.config ~name:"example:walker" ~is_tick:Walker.is_tick
       ~max_states Walker.pa)

let lint_race ~max_states ?sym:_ () =
  Analysis.run
    (Analysis.config ~name:"example:race"
       ~accept_terminal:(fun s ->
           s.Race.p <> Race.Unflipped && s.Race.q <> Race.Unflipped)
       ~max_states Race.pa)

let lint_lr_crash ~max_states ?sym:_ () =
  let config =
    { Faults.Lr.params = { LR.Automaton.n = 3; g = 1; k = 1 };
      faults = Faults.Fault.v ~crash:1 ();
      release = true }
  in
  let d = Faults.Lr.derive ~max_states config in
  let claims =
    List.filter_map
      (fun (a : Faults.Lr.arrow) ->
         Option.map (fun c -> (a.Faults.Lr.label, c)) a.Faults.Lr.claim)
      [ d.Faults.Lr.arrow1; d.Faults.Lr.arrow2 ]
    @ (match d.Faults.Lr.composed with
       | Ok c -> [ ("composed", c) ]
       | Error _ -> [])
  in
  Analysis.run
    (Analysis.config ~name:"lr-crash" ~is_tick:Faults.Lr.is_tick ~claims
       ~fault_view:
         (Faults.Inject.faulted,
          Faults.Inject.effective_proc Faults.Lr.proc_of_action)
       ~max_states
       (Faults.Lr.make config))

(* The proof-module builders explore eagerly, so a tight state budget
   surfaces as [Too_many_states] before [Analysis.run_explored] can
   shield it; report it as PA000 like the library does instead of
   letting the exception escape to the CLI.  [Not_certified] (a
   [--sym on] build whose declared group failed to verify) likewise
   becomes an error report, so [prtb lint --strict] fails on it
   instead of crashing. *)
let guard name runner ~max_states ?sym () =
  try runner ~max_states ?sym () with
  | Mdp.Explore.Too_many_states n ->
    (* At raise time exactly [n] states had been interned, so [n] is
       the partial state count, not just the configured ceiling. *)
    Analysis.Report.make
      { Analysis.Report.model = name; states = n; choices = 0;
        branches = 0;
        skipped = [ "all checks (exploration exceeded the state budget)" ] }
      [ Analysis.Diagnostic.v Analysis.Diagnostic.PA000
          Analysis.Diagnostic.Warning ~model:name
          (Printf.sprintf
             "exploration stopped after interning %d states while building \
              the model; all checks skipped (raise --max-states)"
             n) ]
  | Analysis.Symmetry.Not_certified msg ->
    Analysis.Report.make
      { Analysis.Report.model = name; states = 0; choices = 0;
        branches = 0;
        skipped = [ "all checks (symmetry certification failed)" ] }
      [ Analysis.Diagnostic.v Analysis.Diagnostic.PA030
          Analysis.Diagnostic.Error ~model:name msg ]

(* ------------------------------------------------------------------ *)
(* The registry *)

type entry = {
  name : string;
  doc : string;
  lint :
    max_states:int -> ?sym:Analysis.Symmetry.mode -> unit ->
    Analysis.Report.t;
}

(* The [-sym] variants pin the exploration mode to [On]: they lint the
   certified orbit quotient (and fail loudly if certification breaks),
   whatever [--sym] the caller passed. *)
let force_on runner ~max_states ?sym:_ () =
  runner ~max_states ?sym:(Some Analysis.Symmetry.On) ()

let entries =
  List.map (fun (name, doc, runner) ->
      { name; doc; lint = guard name runner })
  @@
  [ ("lr", "Lehmann-Rabin ring (n=3) + Section 6.2 claims", lint_lr);
    ("lr-line", "Lehmann-Rabin line topology (n=3)",
     lint_lr_topo "lr-line" (LR.Topology.line 3));
    ("lr-star", "Lehmann-Rabin star topology (n=3)",
     lint_lr_topo "lr-star" (LR.Topology.star 3));
    ("election", "Itai-Rodeh leader election (n=3) + ladder claims",
     lint_election);
    ("coin", "shared coin (n=2, barrier 3) + ladder claims", lint_coin);
    ("consensus", "Ben-Or (n=3, f=1, 2 rounds) + decision claim",
     lint_consensus);
    ("lr-sym", "lr on the certified rotation-orbit quotient",
     force_on lint_lr);
    ("election-sym", "election on the certified transposition quotient",
     force_on lint_election);
    ("coin-sym", "coin on the certified transposition quotient",
     force_on lint_coin);
    ("consensus-sym", "consensus on the certified equal-input quotient",
     force_on lint_consensus);
    ("lr-crash",
     "Lehmann-Rabin ring (n=3) under one crash + degraded claims",
     lint_lr_crash);
    ("example:walker", "the quickstart walker automaton", lint_walker);
    ("example:race", "the Example 4.1 two-coin automaton", lint_race) ]

let find_opt name =
  List.find_opt (fun e -> String.equal e.name name) entries

let find name =
  match find_opt name with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Models.find: unknown model %S" name)
