module Q = Proba.Rational
module D = Proba.Dist
module LR = Lehmann_rabin
module IR = Itai_rodeh
module SC = Shared_coin
module BO = Ben_or

(* ------------------------------------------------------------------ *)
(* Memoized builders.

   Every surface (prtb subcommands, the lint targets, the experiment
   harness, the benchmarks) resolves case-study instances through these
   functions, so within one process invocation each (model, parameters)
   pair is explored and compiled exactly once no matter how many
   surfaces touch it. *)

let builds_counter = ref 0
let hits_counter = ref 0

let memo cache key build =
  match Hashtbl.find_opt cache key with
  | Some inst ->
    incr hits_counter;
    inst
  | None ->
    incr builds_counter;
    let inst = build () in
    Hashtbl.add cache key inst;
    inst

let lr_cache : (int * int * int * int option, LR.Proof.instance) Hashtbl.t =
  Hashtbl.create 8

let lr ?max_states ?(g = 1) ?(k = 1) ~n () =
  memo lr_cache (n, g, k, max_states) (fun () ->
      LR.Proof.build ?max_states ~g ~k ~n ())

let lr_topo_cache
  : (string * int * int * int option, LR.Proof.topo_instance) Hashtbl.t =
  Hashtbl.create 8

let lr_topo ?max_states ?(g = 1) ?(k = 1) ~topo () =
  memo lr_topo_cache (LR.Topology.name topo, g, k, max_states) (fun () ->
      LR.Proof.build_topo ?max_states ~g ~k ~topo ())

let election_cache
  : (int * int * int * int option, IR.Proof.instance) Hashtbl.t =
  Hashtbl.create 8

let election ?max_states ?(g = 1) ?(k = 1) ~n () =
  memo election_cache (n, g, k, max_states) (fun () ->
      IR.Proof.build ?max_states ~g ~k ~n ())

let coin_cache
  : (int * int * int * int * int option, SC.Proof.instance) Hashtbl.t =
  Hashtbl.create 8

let coin ?max_states ?(g = 1) ?(k = 1) ~n ~bound () =
  memo coin_cache (n, bound, g, k, max_states) (fun () ->
      SC.Proof.build ?max_states ~g ~k ~n ~bound ())

let consensus_cache
  : ( int * int * int * bool list * int * int * int option,
      BO.Proof.instance )
      Hashtbl.t =
  Hashtbl.create 8

let consensus ?max_states ?(g = 1) ?(k = 1) ~n ~f ~cap ~initial () =
  memo consensus_cache
    (n, f, cap, Array.to_list initial, g, k, max_states)
    (fun () -> BO.Proof.build ?max_states ~g ~k ~n ~f ~cap ~initial ())

type stats = {
  explorations : int;
  compiles : int;
  builds : int;
  cache_hits : int;
}

let stats () =
  { explorations = Mdp.Explore.explorations ();
    compiles = Mdp.Arena.compiles ();
    builds = !builds_counter;
    cache_hits = !hits_counter }

let pp_stats fmt s =
  Format.fprintf fmt
    "registry: explorations: %d, compiles: %d, builds: %d, cache hits: %d"
    s.explorations s.compiles s.builds s.cache_hits

(* ------------------------------------------------------------------ *)
(* The walker of examples/quickstart.ml, registered here so the lint
   gate also covers the automaton shape the tutorial teaches. *)

module Walker = struct
  type state = Done | Walk of { c : int; b : int }
  type action = Tick | Flip

  let is_tick = function Tick -> true | Flip -> false

  let enabled = function
    | Done -> [ { Core.Pa.action = Tick; dist = D.point Done } ]
    | Walk { c; b } ->
      let tick =
        if c > 0 then
          [ { Core.Pa.action = Tick;
              dist = D.point (Walk { c = c - 1; b = 1 }) } ]
        else []
      in
      let flip =
        if b > 0 then
          [ { Core.Pa.action = Flip;
              dist = D.coin Done (Walk { c = 1; b = b - 1 }) } ]
        else []
      in
      tick @ flip

  let pa =
    Core.Pa.make
      ~pp_state:(fun fmt -> function
        | Done -> Format.pp_print_string fmt "done"
        | Walk { c; b } -> Format.fprintf fmt "walk(c=%d,b=%d)" c b)
      ~pp_action:(fun fmt a ->
          Format.pp_print_string fmt
            (match a with Tick -> "tick" | Flip -> "flip"))
      ~start:[ Walk { c = 1; b = 1 } ]
      ~enabled ()
end

(* ------------------------------------------------------------------ *)
(* Claim extraction from the proof modules *)

let lr_claims inst =
  let arrows =
    List.filter_map
      (fun a ->
         Option.map (fun c -> (a.LR.Proof.label, c)) a.LR.Proof.claim)
      (LR.Proof.arrows inst)
  in
  match LR.Proof.composed inst with
  | Ok c -> arrows @ [ ("composed", c) ]
  | Error _ -> arrows

let lr_topo_claims inst =
  let arrows =
    List.filter_map
      (fun a ->
         Option.map (fun c -> (a.LR.Proof.label, c)) a.LR.Proof.claim)
      (LR.Proof.arrows_topo inst)
  in
  match LR.Proof.composed_topo inst with
  | Ok c -> arrows @ [ ("composed", c) ]
  | Error _ -> arrows

let ir_claims inst =
  let arrows =
    List.filter_map
      (fun a ->
         Option.map (fun c -> (a.IR.Proof.label, c)) a.IR.Proof.claim)
      (IR.Proof.arrows inst)
  in
  match IR.Proof.composed inst with
  | Ok c -> arrows @ [ ("composed", c) ]
  | Error _ -> arrows

let sc_claims inst =
  let arrows =
    List.filter_map
      (fun a ->
         Option.map (fun c -> (a.SC.Proof.label, c)) a.SC.Proof.claim)
      (SC.Proof.arrows inst)
  in
  match SC.Proof.composed inst with
  | Ok c -> arrows @ [ ("composed", c) ]
  | Error _ -> arrows

(* ------------------------------------------------------------------ *)
(* Lint runners.  Each resolves its instance through the memoized
   builders above and hands the instance's arena to the analysis, so a
   process that both checks and lints a model explores and compiles it
   once. *)

let lint_lr ~max_states () =
  let inst = lr ~max_states ~n:3 () in
  Analysis.run_explored ~arena:inst.LR.Proof.arena
    (Analysis.config ~name:"lr" ~is_tick:LR.Automaton.is_tick
       ~claims:(lr_claims inst) ~max_states
       (Mdp.Explore.automaton inst.LR.Proof.expl))
    inst.LR.Proof.expl

let lint_lr_topo name topo ~max_states () =
  let inst = lr_topo ~max_states ~topo () in
  Analysis.run_explored ~arena:inst.LR.Proof.tarena
    (Analysis.config ~name ~is_tick:LR.Automaton.is_tick
       ~claims:(lr_topo_claims inst) ~max_states
       (Mdp.Explore.automaton inst.LR.Proof.texpl))
    inst.LR.Proof.texpl

let lint_election ~max_states () =
  let inst = election ~max_states ~n:3 () in
  Analysis.run_explored ~arena:inst.IR.Proof.arena
    (Analysis.config ~name:"election" ~is_tick:IR.Automaton.is_tick
       ~claims:(ir_claims inst) ~max_states
       (Mdp.Explore.automaton inst.IR.Proof.expl))
    inst.IR.Proof.expl

let lint_coin ~max_states () =
  let inst = coin ~max_states ~n:2 ~bound:3 () in
  Analysis.run_explored ~arena:inst.SC.Proof.arena
    (Analysis.config ~name:"coin" ~is_tick:SC.Automaton.is_tick
       ~claims:(sc_claims inst) ~max_states
       (Mdp.Explore.automaton inst.SC.Proof.expl))
    inst.SC.Proof.expl

let lint_consensus ~max_states () =
  let n = 3 and f = 1 and cap = 2 in
  let initial = Array.init n (fun i -> i = n - 1) in
  let inst = consensus ~max_states ~n ~f ~cap ~initial () in
  let arrow =
    BO.Proof.decision_arrow inst ~rounds:cap ~prob:(Q.pow Q.half n)
  in
  let claims =
    match arrow.BO.Proof.claim with
    | Some c -> [ (arrow.BO.Proof.label, c) ]
    | None -> []
  in
  Analysis.run_explored ~arena:inst.BO.Proof.arena
    (Analysis.config ~name:"consensus" ~is_tick:BO.Automaton.is_tick
       ~claims ~max_states
       (Mdp.Explore.automaton inst.BO.Proof.expl))
    inst.BO.Proof.expl

let lint_walker ~max_states () =
  Analysis.run
    (Analysis.config ~name:"example:walker" ~is_tick:Walker.is_tick
       ~max_states Walker.pa)

let lint_lr_crash ~max_states () =
  let config =
    { Faults.Lr.params = { LR.Automaton.n = 3; g = 1; k = 1 };
      faults = Faults.Fault.v ~crash:1 ();
      release = true }
  in
  let d = Faults.Lr.derive ~max_states config in
  let claims =
    List.filter_map
      (fun (a : Faults.Lr.arrow) ->
         Option.map (fun c -> (a.Faults.Lr.label, c)) a.Faults.Lr.claim)
      [ d.Faults.Lr.arrow1; d.Faults.Lr.arrow2 ]
    @ (match d.Faults.Lr.composed with
       | Ok c -> [ ("composed", c) ]
       | Error _ -> [])
  in
  Analysis.run
    (Analysis.config ~name:"lr-crash" ~is_tick:Faults.Lr.is_tick ~claims
       ~fault_view:
         (Faults.Inject.faulted,
          Faults.Inject.effective_proc Faults.Lr.proc_of_action)
       ~max_states
       (Faults.Lr.make config))

(* The proof-module builders explore eagerly, so a tight state budget
   surfaces as [Too_many_states] before [Analysis.run_explored] can
   shield it; report it as PA000 like the library does instead of
   letting the exception escape to the CLI. *)
let guard name runner ~max_states () =
  try runner ~max_states () with
  | Mdp.Explore.Too_many_states n ->
    (* At raise time exactly [n] states had been interned, so [n] is
       the partial state count, not just the configured ceiling. *)
    Analysis.Report.make
      { Analysis.Report.model = name; states = n; choices = 0;
        branches = 0;
        skipped = [ "all checks (exploration exceeded the state budget)" ] }
      [ Analysis.Diagnostic.v Analysis.Diagnostic.PA000
          Analysis.Diagnostic.Warning ~model:name
          (Printf.sprintf
             "exploration stopped after interning %d states while building \
              the model; all checks skipped (raise --max-states)"
             n) ]

(* ------------------------------------------------------------------ *)
(* The registry *)

type entry = {
  name : string;
  doc : string;
  lint : max_states:int -> unit -> Analysis.Report.t;
}

let entries =
  List.map (fun (name, doc, runner) ->
      { name; doc; lint = guard name runner })
  @@
  [ ("lr", "Lehmann-Rabin ring (n=3) + Section 6.2 claims", lint_lr);
    ("lr-line", "Lehmann-Rabin line topology (n=3)",
     lint_lr_topo "lr-line" (LR.Topology.line 3));
    ("lr-star", "Lehmann-Rabin star topology (n=3)",
     lint_lr_topo "lr-star" (LR.Topology.star 3));
    ("election", "Itai-Rodeh leader election (n=3) + ladder claims",
     lint_election);
    ("coin", "shared coin (n=2, barrier 3) + ladder claims", lint_coin);
    ("consensus", "Ben-Or (n=3, f=1, 2 rounds) + decision claim",
     lint_consensus);
    ("lr-crash",
     "Lehmann-Rabin ring (n=3) under one crash + degraded claims",
     lint_lr_crash);
    ("example:walker", "the quickstart walker automaton", lint_walker) ]

let find_opt name =
  List.find_opt (fun e -> String.equal e.name name) entries

let find name =
  match find_opt name with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Models.find: unknown model %S" name)
