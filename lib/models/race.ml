module D = Proba.Dist

type coin = Unflipped | Heads | Tails
type state = { p : coin; q : coin }
type action = Flip_p | Flip_q

let start = { p = Unflipped; q = Unflipped }

let flip_p_step s =
  { Core.Pa.action = Flip_p;
    dist = D.coin { s with p = Heads } { s with p = Tails } }

let flip_q_step s =
  { Core.Pa.action = Flip_q;
    dist = D.coin { s with q = Heads } { s with q = Tails } }

let enabled s =
  (if s.p = Unflipped then [ flip_p_step s ] else [])
  @ (if s.q = Unflipped then [ flip_q_step s ] else [])

let pp_state fmt s =
  let c = function Unflipped -> "?" | Heads -> "H" | Tails -> "T" in
  Format.fprintf fmt "(%s,%s)" (c s.p) (c s.q)

let pp_action fmt = function
  | Flip_p -> Format.pp_print_string fmt "flip_P"
  | Flip_q -> Format.pp_print_string fmt "flip_Q"

let pa = Core.Pa.make ~pp_state ~pp_action ~start:[ start ] ~enabled ()

let p_heads = Core.Pred.make "P=heads" (fun s -> s.p = Heads)
let q_tails = Core.Pred.make "Q=tails" (fun s -> s.q = Tails)

let dependency_adversary frag =
  let s = Core.Exec.lstate frag in
  if s.p = Unflipped then Some (flip_p_step s)
  else if s.p = Heads && s.q = Unflipped then Some (flip_q_step s)
  else None

let fair_adversary frag =
  let s = Core.Exec.lstate frag in
  if s.p = Unflipped then Some (flip_p_step s)
  else if s.q = Unflipped then Some (flip_q_step s)
  else None

let all_states =
  let coins = [ Unflipped; Heads; Tails ] in
  List.concat_map (fun p -> List.map (fun q -> { p; q }) coins) coins
