(** The model registry: one wiring point between the case studies and
    every surface that consumes them.

    [prtb check], [prtb lint], [prtb export-dot], the experiment
    harness and the benchmarks all resolve case-study instances through
    the memoized builders below, so within one process invocation each
    (model, parameters) pair is explored and its {!Mdp.Arena} compiled
    {e exactly once} -- [prtb check lr --stats] reports
    [explorations: 1, compiles: 1].

    The registry also owns the built-in lint targets for [prtb lint]
    (each target couples an automaton with the model knowledge that
    unlocks the deeper checks: tick classifier, intended terminals,
    finished claims).  The [example:race] target stays in
    [bin/lint_targets.ml] because it lives in the experiments library,
    which itself depends on this one. *)

(** {1 Memoized instance builders}

    Parameters mirror the proof modules' [build] functions; results are
    cached per parameter tuple (including [max_states]) for the
    lifetime of the process. *)

val lr :
  ?max_states:int -> ?g:int -> ?k:int -> n:int -> unit ->
  Lehmann_rabin.Proof.instance

val lr_topo :
  ?max_states:int -> ?g:int -> ?k:int -> topo:Lehmann_rabin.Topology.t ->
  unit -> Lehmann_rabin.Proof.topo_instance

val election :
  ?max_states:int -> ?g:int -> ?k:int -> n:int -> unit ->
  Itai_rodeh.Proof.instance

val coin :
  ?max_states:int -> ?g:int -> ?k:int -> n:int -> bound:int -> unit ->
  Shared_coin.Proof.instance

val consensus :
  ?max_states:int -> ?g:int -> ?k:int -> n:int -> f:int -> cap:int ->
  initial:bool array -> unit -> Ben_or.Proof.instance

(** {1 Work accounting} *)

type stats = {
  explorations : int;  (** {!Mdp.Explore.explorations} *)
  compiles : int;  (** {!Mdp.Arena.compiles} *)
  builds : int;  (** instances actually constructed here *)
  cache_hits : int;  (** builder calls answered from the cache *)
}

(** Process-lifetime totals (the exploration and compile counters are
    global, so work done outside the registry is counted too). *)
val stats : unit -> stats

(** ["registry: explorations: %d, compiles: %d, builds: %d, cache \
    hits: %d"] -- the line [prtb --stats] prints and CI greps. *)
val pp_stats : Format.formatter -> stats -> unit

(** {1 Lint targets} *)

type entry = {
  name : string;  (** CLI name, e.g. ["lr"] or ["example:walker"] *)
  doc : string;  (** one-line description for [--help] *)
  lint : max_states:int -> unit -> Analysis.Report.t;
}

(** The built-in targets, in display order. *)
val entries : entry list

val find_opt : string -> entry option

(** @raise Invalid_argument on unknown names. *)
val find : string -> entry

(** [guard name runner] downgrades a {!Mdp.Explore.Too_many_states}
    escape from an eagerly-exploring builder into a PA000 report, like
    {!Analysis.run} does for its own exploration.  Exposed for external
    targets registered alongside {!entries}. *)
val guard :
  string -> (max_states:int -> unit -> Analysis.Report.t) ->
  max_states:int -> unit -> Analysis.Report.t

(** The quickstart walker automaton (also a lint target). *)
module Walker : sig
  type state = Done | Walk of { c : int; b : int }
  type action = Tick | Flip

  val is_tick : action -> bool
  val pa : (state, action) Core.Pa.t
end
