(** The model registry: one wiring point between the case studies and
    every surface that consumes them.

    [prtb check], [prtb serve], [prtb lint], [prtb export-dot], the
    experiment harness and the benchmarks all resolve case-study
    instances through the memoized builders below, so within one
    process invocation each (model, parameters) pair is explored and
    its {!Mdp.Arena} compiled {e exactly once} -- [prtb check lr
    --stats] reports [explorations: 1, compiles: 1].

    The registry is {e domain-safe}: concurrent [prtb serve] workers
    requesting the same key block on the single in-flight build instead
    of racing it, so the build-once guarantee survives contention
    (builds of distinct keys still run in parallel).

    The registry also owns all built-in lint targets for [prtb lint]
    (each target couples an automaton with the model knowledge that
    unlocks the deeper checks: tick classifier, intended terminals,
    finished claims).  [example:race] moved here with its automaton
    ({!Race}), retiring [bin/lint_targets.ml]. *)

(** The Example 4.1 two-coin automaton (here so the lint-target table
    needs nothing from the experiments library). *)
module Race = Race

(** {1 Memoized instance builders}

    Parameters mirror the proof modules' [build] functions; results are
    cached per parameter tuple (including [max_states] and [sym]) for
    the lifetime of the process -- or, under {!set_capacity}, until
    evicted by more recently used instances.  [sym] (default [Off])
    selects orbit-reduced exploration, exactly as in the proof
    modules' [build]. *)

val lr :
  ?max_states:int -> ?g:int -> ?k:int -> ?sym:Analysis.Symmetry.mode ->
  n:int -> unit -> Lehmann_rabin.Proof.instance

val lr_topo :
  ?max_states:int -> ?g:int -> ?k:int -> ?sym:Analysis.Symmetry.mode ->
  topo:Lehmann_rabin.Topology.t -> unit ->
  Lehmann_rabin.Proof.topo_instance

val election :
  ?max_states:int -> ?g:int -> ?k:int -> ?sym:Analysis.Symmetry.mode ->
  n:int -> unit -> Itai_rodeh.Proof.instance

val coin :
  ?max_states:int -> ?g:int -> ?k:int -> ?sym:Analysis.Symmetry.mode ->
  n:int -> bound:int -> unit -> Shared_coin.Proof.instance

val consensus :
  ?max_states:int -> ?g:int -> ?k:int -> ?sym:Analysis.Symmetry.mode ->
  n:int -> f:int -> cap:int -> initial:bool array -> unit ->
  Ben_or.Proof.instance

(** {1 Preloading}

    [preload_* ... inst] seeds the registry with an instance built
    elsewhere -- an arena snapshot loaded by [prtb serve
    --snapshot-dir] -- under exactly the key the matching builder
    would use, so the first served query for those parameters is a
    cache hit with [explorations: 0, compiles: 0].  Returns [false]
    (keeping the existing entry) when the key is already cached or
    mid-build; preloaded entries respect {!set_capacity} like any
    other insert.  The [sym] and [max_states] arguments are required:
    a preload under the wrong key would silently never be hit, so
    callers must state the full tuple. *)

val preload_lr :
  ?max_states:int -> g:int -> k:int -> sym:Analysis.Symmetry.mode ->
  n:int -> Lehmann_rabin.Proof.instance -> bool

val preload_lr_topo :
  ?max_states:int -> g:int -> k:int -> sym:Analysis.Symmetry.mode ->
  topo:Lehmann_rabin.Topology.t -> Lehmann_rabin.Proof.topo_instance ->
  bool

val preload_election :
  ?max_states:int -> g:int -> k:int -> sym:Analysis.Symmetry.mode ->
  n:int -> Itai_rodeh.Proof.instance -> bool

val preload_coin :
  ?max_states:int -> g:int -> k:int -> sym:Analysis.Symmetry.mode ->
  n:int -> bound:int -> Shared_coin.Proof.instance -> bool

val preload_consensus :
  ?max_states:int -> g:int -> k:int -> sym:Analysis.Symmetry.mode ->
  n:int -> f:int -> cap:int -> initial:bool array ->
  Ben_or.Proof.instance -> bool

(** {1 Cache bounds}

    [set_capacity (Some bytes)] bounds the memory retained by the memo
    tables: every cached instance carries a cost estimated from its
    compiled arena size, and when the total exceeds the capacity the
    least-recently-used instances are evicted (an instance larger than
    the whole capacity is returned but not retained).  [prtb serve]
    wires [--cache-mb] here; the one-shot CLI default is [None]
    (unbounded, process lifetimes are one query long). *)
val set_capacity : int option -> unit

(** {1 Work accounting} *)

type stats = {
  explorations : int;  (** {!Mdp.Explore.explorations} *)
  compiles : int;  (** {!Mdp.Arena.compiles} *)
  builds : int;  (** instances actually constructed here *)
  cache_hits : int;  (** builder calls answered from the cache *)
  evictions : int;  (** instances dropped by {!set_capacity} pressure *)
  cached_entries : int;  (** instances currently retained *)
  cached_bytes : int;  (** their estimated total cost *)
}

(** Process-lifetime totals (the exploration and compile counters are
    global, so work done outside the registry is counted too). *)
val stats : unit -> stats

(** ["registry: explorations: %d, compiles: %d, builds: %d, cache \
    hits: %d, evictions: %d"] -- the line [prtb --stats] prints and CI
    greps. *)
val pp_stats : Format.formatter -> stats -> unit

(** {1 Lint targets} *)

type entry = {
  name : string;  (** CLI name, e.g. ["lr"] or ["example:walker"] *)
  doc : string;  (** one-line description for [--help] *)
  lint :
    max_states:int -> ?sym:Analysis.Symmetry.mode -> unit ->
    Analysis.Report.t;
      (** [sym] (default [Off]) selects the exploration mode; the
          [*-sym] targets pin it to [On] regardless. *)
}

(** The built-in targets, in display order. *)
val entries : entry list

val find_opt : string -> entry option

(** @raise Invalid_argument on unknown names. *)
val find : string -> entry

(** [guard name runner] downgrades a {!Mdp.Explore.Too_many_states}
    escape from an eagerly-exploring builder into a PA000 report, like
    {!Analysis.run} does for its own exploration, and an
    {!Analysis.Symmetry.Not_certified} escape (a [sym=On] build whose
    declared group failed to verify) into a PA030 error report.
    Exposed for external targets registered alongside {!entries}. *)
val guard :
  string ->
  (max_states:int -> ?sym:Analysis.Symmetry.mode -> unit ->
   Analysis.Report.t) ->
  max_states:int -> ?sym:Analysis.Symmetry.mode -> unit ->
  Analysis.Report.t

(** The quickstart walker automaton (also a lint target). *)
module Walker : sig
  type state = Done | Walk of { c : int; b : int }
  type action = Tick | Flip

  val is_tick : action -> bool
  val pa : (state, action) Core.Pa.t
end
