(** The two-coin automaton of Example 4.1: processes P and Q each flip
    one fair coin; the adversary schedules the flips and may condition
    one on the outcome of the other.

    Lives in the registry library (as [Models.Race]) so the built-in
    lint-target table can reference it without a dependency cycle: it
    used to live in the experiments library, which depends on this
    one. *)

type coin = Unflipped | Heads | Tails
type state = { p : coin; q : coin }
type action = Flip_p | Flip_q

val start : state
val pa : (state, action) Core.Pa.t

val p_heads : state Core.Pred.t
val q_tails : state Core.Pred.t

(** Flips P; flips Q only if P came up heads (the dependence-creating
    adversary of Example 4.1). *)
val dependency_adversary : (state, action) Core.Adversary.t

(** Flips P then Q unconditionally. *)
val fair_adversary : (state, action) Core.Adversary.t

(** All nine states, for Proposition 4.2's premise check. *)
val all_states : state list
