type ('s, 'a) setup = {
  pa : ('s, 'a) Core.Pa.t;
  scheduler : ('s, 'a) Scheduler.t;
  duration : 'a -> int;
  start : 's;
}

(* An explicit [?pool] wins; otherwise the session default installed by
   [--domains] applies. *)
let resolve_pool = function
  | Some _ as p -> p
  | None -> Parallel.Pool.get_default ()

(* Reproducibility across pool sizes: per-trial generators are always
   split off the root sequentially (exactly the streams the sequential
   loop would draw), and only the trial *execution* is farmed out.
   Success counts are order-independent, so the estimate is
   bit-identical with and without a pool. *)
let split_rngs root n = Array.init n (fun _ -> Proba.Rng.split root)

let run_trial setup ~target ~within rng =
  let outcome =
    Engine.run setup.pa setup.scheduler ~rng ~stop:target
      ~duration:setup.duration ~max_time:within setup.start
  in
  outcome.Engine.why = Engine.Reached

(* Fixed-trial batches observe the ambient deadline (per trial on the
   sequential path, per chunk on the pooled one) and raise
   [Core.Budget.Deadline_exceeded]; [estimate_reach_budgeted] is the
   cooperative variant that degrades instead of raising and therefore
   ignores the ambient clock -- its at-least-one-trial guarantee is what
   the deadline-degraded serving path relies on. *)
let estimate_reach ?pool setup ~target ~within ~trials ~seed =
  let root = Proba.Rng.create ~seed in
  match resolve_pool pool with
  | None ->
    let prop = Proba.Stat.Proportion.create () in
    for _ = 1 to trials do
      Core.Budget.poll ();
      let rng = Proba.Rng.split root in
      Proba.Stat.Proportion.add prop (run_trial setup ~target ~within rng)
    done;
    prop
  | Some p ->
    let rngs = split_rngs root trials in
    let successes =
      try
        Parallel.Pool.map_reduce p ?stop:(Core.Budget.deadline_stop ())
          ~n:trials ~init:0 ~combine:( + ) (fun i ->
            if run_trial setup ~target ~within rngs.(i) then 1 else 0)
      with Parallel.Pool.Cancelled reason ->
        raise (Core.Budget.Deadline_exceeded reason)
    in
    Proba.Stat.Proportion.of_counts ~trials ~successes

type budgeted = {
  prop : Proba.Stat.Proportion.t;
  trials_run : int;
  batches : int;
  stopped : string option;
}

let estimate_reach_budgeted ?pool setup ~target ~within
    ?(budget = Core.Budget.unlimited) ?clock ?(initial_trials = 64) ~seed () =
  let clock =
    match clock with Some c -> c | None -> Core.Budget.start budget
  in
  let retries = max 1 (Core.Budget.budget clock).Core.Budget.retries in
  let root = Proba.Rng.create ~seed in
  let trials_run = ref 0 in
  let batches = ref 0 in
  let stopped = ref None in
  let batch = ref (max 1 initial_trials) in
  let successes = ref 0 in
  (match resolve_pool pool with
   | None ->
     (try
        for _round = 1 to retries do
          for _ = 1 to !batch do
            (* The first trial always runs, so even an already-expired
               budget yields a (wide) interval rather than nothing. *)
            if !trials_run > 0 then
              (match Core.Budget.exhausted clock with
               | Some reason ->
                 stopped := Some reason;
                 raise Exit
               | None -> ());
            let rng = Proba.Rng.split root in
            if run_trial setup ~target ~within rng then incr successes;
            incr trials_run
          done;
          incr batches;
          batch := !batch * 2
        done
      with Exit -> ());
   | Some p ->
     (* Pooled batches: the budget probe fires between chunks (never
        mid-trial); chunks already claimed drain before the round stops,
        and trials completed in a cancelled round still count.  The
        first chunk is exempt from the probe, preserving the
        at-least-one-trial guarantee. *)
     let done_trials = Atomic.make 0 in
     let stop () =
       if Atomic.get done_trials = 0 then None
       else Core.Budget.exhausted clock
     in
     (try
        for _round = 1 to retries do
          let n = !batch in
          let rngs = split_rngs root n in
          let ran = Array.make n false in
          let succ = Array.make n false in
          let tally () =
            for i = 0 to n - 1 do
              if ran.(i) then begin
                incr trials_run;
                if succ.(i) then incr successes
              end
            done
          in
          (try
             Parallel.Pool.parallel_for p ~stop ~n (fun i ->
                 succ.(i) <- run_trial setup ~target ~within rngs.(i);
                 ran.(i) <- true;
                 Atomic.incr done_trials);
             tally ()
           with Parallel.Pool.Cancelled reason ->
             tally ();
             stopped := Some reason;
             raise Exit);
          incr batches;
          batch := !batch * 2
        done
      with Exit -> ()));
  {
    prop =
      Proba.Stat.Proportion.of_counts ~trials:!trials_run
        ~successes:!successes;
    trials_run = !trials_run;
    batches = !batches;
    stopped = !stopped;
  }

let time_trial setup ~target ~max_steps rng =
  let outcome =
    Engine.run setup.pa setup.scheduler ~rng ~stop:target
      ~duration:setup.duration ~max_steps setup.start
  in
  if outcome.Engine.why = Engine.Reached then
    Some (float_of_int outcome.Engine.elapsed)
  else None

(* Summaries are running (Welford) statistics, so [record] is replayed
   in trial order even on the pooled path: identical floats either
   way. *)
let run_times ?pool setup ~target ~trials ~seed ~max_steps record =
  let root = Proba.Rng.create ~seed in
  match resolve_pool pool with
  | None ->
    let missed = ref 0 in
    for _ = 1 to trials do
      Core.Budget.poll ();
      let rng = Proba.Rng.split root in
      match time_trial setup ~target ~max_steps rng with
      | Some t -> record t
      | None -> incr missed
    done;
    !missed
  | Some p ->
    let rngs = split_rngs root trials in
    let times = Array.make trials None in
    (try
       Parallel.Pool.parallel_for p ?stop:(Core.Budget.deadline_stop ())
         ~n:trials (fun i ->
           times.(i) <- time_trial setup ~target ~max_steps rngs.(i))
     with Parallel.Pool.Cancelled reason ->
       raise (Core.Budget.Deadline_exceeded reason));
    let missed = ref 0 in
    Array.iter
      (function Some t -> record t | None -> incr missed)
      times;
    !missed

let estimate_time ?pool setup ~target ~trials ~seed ?(max_steps = 1_000_000)
    () =
  let summary = Proba.Stat.Summary.create () in
  let missed =
    run_times ?pool setup ~target ~trials ~seed ~max_steps
      (Proba.Stat.Summary.add summary)
  in
  (summary, missed)

let histogram_time ?pool setup ~target ~trials ~seed
    ?(max_steps = 1_000_000) ~lo ~hi ~bins () =
  let summary = Proba.Stat.Summary.create () in
  let hist = Proba.Stat.Histogram.create ~lo ~hi ~bins in
  let _missed =
    run_times ?pool setup ~target ~trials ~seed ~max_steps (fun x ->
        Proba.Stat.Summary.add summary x;
        Proba.Stat.Histogram.add hist x)
  in
  (hist, summary)
