type ('s, 'a) setup = {
  pa : ('s, 'a) Core.Pa.t;
  scheduler : ('s, 'a) Scheduler.t;
  duration : 'a -> int;
  start : 's;
}

let estimate_reach setup ~target ~within ~trials ~seed =
  let root = Proba.Rng.create ~seed in
  let prop = Proba.Stat.Proportion.create () in
  for _ = 1 to trials do
    let rng = Proba.Rng.split root in
    let outcome =
      Engine.run setup.pa setup.scheduler ~rng ~stop:target
        ~duration:setup.duration ~max_time:within setup.start
    in
    Proba.Stat.Proportion.add prop (outcome.Engine.why = Engine.Reached)
  done;
  prop

type budgeted = {
  prop : Proba.Stat.Proportion.t;
  trials_run : int;
  batches : int;
  stopped : string option;
}

let estimate_reach_budgeted setup ~target ~within
    ?(budget = Core.Budget.unlimited) ?clock ?(initial_trials = 64) ~seed () =
  let clock =
    match clock with Some c -> c | None -> Core.Budget.start budget
  in
  let retries = max 1 (Core.Budget.budget clock).Core.Budget.retries in
  let root = Proba.Rng.create ~seed in
  let prop = Proba.Stat.Proportion.create () in
  let trials_run = ref 0 in
  let batches = ref 0 in
  let stopped = ref None in
  let batch = ref (max 1 initial_trials) in
  (try
     for _round = 1 to retries do
       for _ = 1 to !batch do
         (* The first trial always runs, so even an already-expired
            budget yields a (wide) interval rather than nothing. *)
         if !trials_run > 0 then
           (match Core.Budget.exhausted clock with
            | Some reason ->
              stopped := Some reason;
              raise Exit
            | None -> ());
         let rng = Proba.Rng.split root in
         let outcome =
           Engine.run setup.pa setup.scheduler ~rng ~stop:target
             ~duration:setup.duration ~max_time:within setup.start
         in
         Proba.Stat.Proportion.add prop
           (outcome.Engine.why = Engine.Reached);
         incr trials_run
       done;
       incr batches;
       batch := !batch * 2
     done
   with Exit -> ());
  { prop; trials_run = !trials_run; batches = !batches; stopped = !stopped }

let run_times setup ~target ~trials ~seed ~max_steps record =
  let root = Proba.Rng.create ~seed in
  let missed = ref 0 in
  for _ = 1 to trials do
    let rng = Proba.Rng.split root in
    let outcome =
      Engine.run setup.pa setup.scheduler ~rng ~stop:target
        ~duration:setup.duration ~max_steps setup.start
    in
    if outcome.Engine.why = Engine.Reached then
      record (float_of_int outcome.Engine.elapsed)
    else incr missed
  done;
  !missed

let estimate_time setup ~target ~trials ~seed ?(max_steps = 1_000_000) () =
  let summary = Proba.Stat.Summary.create () in
  let missed =
    run_times setup ~target ~trials ~seed ~max_steps
      (Proba.Stat.Summary.add summary)
  in
  (summary, missed)

let histogram_time setup ~target ~trials ~seed ?(max_steps = 1_000_000)
    ~lo ~hi ~bins () =
  let summary = Proba.Stat.Summary.create () in
  let hist = Proba.Stat.Histogram.create ~lo ~hi ~bins in
  let _missed =
    run_times setup ~target ~trials ~seed ~max_steps (fun x ->
        Proba.Stat.Summary.add summary x;
        Proba.Stat.Histogram.add hist x)
  in
  (hist, summary)
