(** Stochastic local search over scheduler parameters.

    At ring sizes beyond exhaustive reach, the worst-case adversary can
    only be probed: we parameterize schedulers by a small genome (e.g.
    a priority table over action classes) and hill-climb the genome
    against a Monte Carlo objective (say, mean time to the critical
    region).  This gives empirical lower bounds on the worst case --
    the direction the paper leaves open ("it would be very satisfying
    to derive a non trivial lower bound").

    The search is deterministic given the seed, like everything else in
    this library. *)

type 'g result = {
  best : 'g;
  score : float;  (** objective value of [best] *)
  evaluations : int;  (** number of objective evaluations spent *)
  trace : float list;  (** best-so-far after each accepted move *)
}

(** [hill_climb ~rng ~init ~neighbor ~score ~steps ()] maximizes
    [score] by repeated neighbor proposals, accepting improvements;
    [restarts] (default 0) re-seeds from [init] and keeps the best
    overall. *)
val hill_climb :
  rng:Proba.Rng.t -> init:'g -> neighbor:('g -> Proba.Rng.t -> 'g) ->
  score:('g -> float) -> steps:int -> ?restarts:int -> unit -> 'g result

(** {1 Arena-backed policy search}

    When the model fits in an explored arena, adversaries need not be
    sampled: a memoryless adversary is a genome assigning one chosen
    step to each state, and its step-bounded reach probability is
    computed exactly (in floats) by dense sweeps over the arena's
    float plane.  The hill climb then searches adversary space with a
    deterministic, execution-free objective. *)

(** [policy_value arena ~policy ~target ~horizon] evaluates the Markov
    chain induced by choosing step [policy.(s) mod degree(s)] at every
    state: the probability of reaching [target] within [horizon]
    {e steps} (not ticks), per state.  Frontier/terminal states score 0
    unless in the target. *)
val policy_value :
  ('s, 'a) Mdp.Arena.t -> policy:int array -> target:bool array ->
  horizon:int -> float array

(** [policy_search ~rng arena ~target ~horizon ~steps ()] hill-climbs
    adversary genomes against the mean of {!policy_value} over the
    start states -- maximizing by default, minimizing with
    [~minimize:true] (the reported [score]/[trace] are always the
    actual objective values).  [steps] counts proposal moves; each
    move re-randomizes one state's chosen step. *)
val policy_search :
  rng:Proba.Rng.t -> ('s, 'a) Mdp.Arena.t -> target:bool array ->
  horizon:int -> steps:int -> ?restarts:int -> ?minimize:bool -> unit ->
  int array result
