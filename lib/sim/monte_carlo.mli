(** Repeated-trial estimation on top of {!Engine}.

    Each trial gets an independent generator split off a root seed, so
    experiments are exactly reproducible and embarrassingly restartable.
    Probability estimates come back as Wilson-interval proportions; time
    estimates as running summaries.

    All estimators accept [?pool] (falling back to the session default
    installed by [--domains]).  Trials then run across the pool's
    domains, but per-trial generators are still split off the root
    sequentially and results are reduced in trial order, so every
    estimate is bit-identical to the sequential run with the same
    [~seed] -- for any number of domains. *)

type ('s, 'a) setup = {
  pa : ('s, 'a) Core.Pa.t;
  scheduler : ('s, 'a) Scheduler.t;
  duration : 'a -> int;
  start : 's;
}

(** [estimate_reach setup ~target ~within ~trials ~seed] estimates
    [P(reach target within time)] ([within] in slots). *)
val estimate_reach :
  ?pool:Parallel.Pool.t ->
  ('s, 'a) setup -> target:('s -> bool) -> within:int -> trials:int ->
  seed:int -> Proba.Stat.Proportion.t

(** Outcome of a budgeted estimation: the Wilson-interval proportion,
    how much work fit in the allowance, and which budget dimension cut
    the run short ([None] when all batch rounds completed). *)
type budgeted = {
  prop : Proba.Stat.Proportion.t;
  trials_run : int;
  batches : int;
  stopped : string option;
}

(** [estimate_reach_budgeted setup ~target ~within ?budget ?clock
    ?initial_trials ~seed ()] is {!estimate_reach} under a wall-clock
    allowance: trials run in [budget.retries] batches that double in
    size ([initial_trials], then twice that, ...) so short budgets
    still produce an interval and long budgets tighten it.  The clock
    is consulted between trials; pass [clock] to share an allowance
    already partly consumed by exploration.  At least one trial always
    runs, and no exception escapes on exhaustion.  On the pooled path
    the clock is consulted between chunks of trials instead of between
    single trials, so exhaustion is detected slightly more coarsely;
    when the budget never fires the result is bit-identical to the
    sequential run. *)
val estimate_reach_budgeted :
  ?pool:Parallel.Pool.t ->
  ('s, 'a) setup -> target:('s -> bool) -> within:int ->
  ?budget:Core.Budget.t -> ?clock:Core.Budget.clock ->
  ?initial_trials:int -> seed:int -> unit -> budgeted

(** [estimate_time setup ~target ~trials ~seed ?max_steps ()] runs until
    the target and summarizes elapsed slots.  Trials that do not reach
    the target within [max_steps] steps (default [1_000_000]) are
    reported separately in the second component. *)
val estimate_time :
  ?pool:Parallel.Pool.t ->
  ('s, 'a) setup -> target:('s -> bool) -> trials:int -> seed:int ->
  ?max_steps:int -> unit -> Proba.Stat.Summary.t * int

(** [histogram_time] like {!estimate_time} but also bins the elapsed
    times. *)
val histogram_time :
  ?pool:Parallel.Pool.t ->
  ('s, 'a) setup -> target:('s -> bool) -> trials:int -> seed:int ->
  ?max_steps:int -> lo:float -> hi:float -> bins:int -> unit ->
  Proba.Stat.Histogram.t * Proba.Stat.Summary.t
