type 'g result = {
  best : 'g;
  score : float;
  evaluations : int;
  trace : float list;
}

let hill_climb ~rng ~init ~neighbor ~score ~steps ?(restarts = 0) () =
  let evaluations = ref 0 in
  let evaluate g =
    incr evaluations;
    score g
  in
  let run_once () =
    let current = ref init in
    let current_score = ref (evaluate init) in
    let trace = ref [ !current_score ] in
    for _ = 1 to steps do
      let candidate = neighbor !current rng in
      let candidate_score = evaluate candidate in
      if candidate_score > !current_score then begin
        current := candidate;
        current_score := candidate_score;
        trace := candidate_score :: !trace
      end
    done;
    (!current, !current_score, List.rev !trace)
  in
  let rec go n (best, best_score, best_trace) =
    if n <= 0 then (best, best_score, best_trace)
    else begin
      let b, s, t = run_once () in
      if s > best_score then go (n - 1) (b, s, t)
      else go (n - 1) (best, best_score, best_trace)
    end
  in
  let best, score, trace = go restarts (run_once ()) in
  { best; score; evaluations = !evaluations; trace }

(* ------------------------------------------------------------------ *)
(* Arena-backed policy search: the genome is a memoryless adversary
   (one chosen step per state), scored by evaluating the induced
   Markov chain directly on the arena's float plane.  No execution
   sampling: each evaluation is [horizon] dense sweeps. *)

let clamp_choice (a : _ Mdp.Arena.t) policy s =
  let deg = a.Mdp.Arena.step_off.(s + 1) - a.Mdp.Arena.step_off.(s) in
  if deg = 0 then 0
  else begin
    let c = policy.(s) mod deg in
    if c < 0 then c + deg else c
  end

let policy_value (a : _ Mdp.Arena.t) ~policy ~target ~horizon =
  let n = a.Mdp.Arena.n in
  if Array.length policy <> n then
    invalid_arg "Search.policy_value: policy array has wrong length";
  if Array.length target <> n then
    invalid_arg "Search.policy_value: target array has wrong length";
  if horizon < 0 then
    invalid_arg "Search.policy_value: negative horizon";
  let v =
    ref (Array.init n (fun s -> if target.(s) then 1.0 else 0.0))
  in
  let spare = ref (Array.make n 0.0) in
  for _t = 1 to horizon do
    let cur = !v and fresh = !spare in
    for s = 0 to n - 1 do
      fresh.(s) <-
        (if target.(s) then 1.0
         else begin
           let lo = a.Mdp.Arena.step_off.(s) in
           let hi = a.Mdp.Arena.step_off.(s + 1) in
           if hi = lo then 0.0
           else begin
             let k = lo + clamp_choice a policy s in
             let acc = ref 0.0 in
             for o = a.Mdp.Arena.out_off.(k)
               to a.Mdp.Arena.out_off.(k + 1) - 1
             do
               acc :=
                 !acc
                 +. (a.Mdp.Arena.prob_f.(o) *. cur.(a.Mdp.Arena.tgt.(o)))
             done;
             !acc
           end
         end)
    done;
    v := fresh;
    spare := cur
  done;
  !v

let mean_over_starts a values =
  match Mdp.Arena.start_indices a with
  | [] -> 0.0
  | starts ->
    List.fold_left (fun acc i -> acc +. values.(i)) 0.0 starts
    /. float_of_int (List.length starts)

let policy_search ~rng (a : _ Mdp.Arena.t) ~target ~horizon ~steps
    ?restarts ?(minimize = false) () =
  let n = a.Mdp.Arena.n in
  let score policy =
    let p = mean_over_starts a (policy_value a ~policy ~target ~horizon) in
    if minimize then -.p else p
  in
  let neighbor policy rng =
    let fresh = Array.copy policy in
    if n > 0 then begin
      let s = Proba.Rng.int rng n in
      let deg = a.Mdp.Arena.step_off.(s + 1) - a.Mdp.Arena.step_off.(s) in
      if deg > 1 then fresh.(s) <- Proba.Rng.int rng deg
    end;
    fresh
  in
  let found =
    hill_climb ~rng ~init:(Array.make n 0) ~neighbor ~score ~steps
      ?restarts ()
  in
  if minimize then
    { found with
      score = -.found.score;
      trace = List.map (fun x -> -.x) found.trace }
  else found
