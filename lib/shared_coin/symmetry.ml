let apply_state pi (s : Automaton.state) =
  let clocks = Array.copy s.Automaton.clocks in
  Array.iteri (fun i c -> clocks.(pi.(i)) <- c) s.Automaton.clocks;
  { s with Automaton.clocks }

let apply_action pi = function
  | Automaton.Tick -> Automaton.Tick
  | Automaton.Flip i -> Automaton.Flip pi.(i)

let transposition n a b =
  Array.init n (fun i -> if i = a then b else if i = b then a else i)

(* The counter is shared and the start clocks are uniform, so the full
   symmetric group on processes acts; adjacent transpositions generate
   it. *)
let generators (params : Automaton.params) =
  let n = params.Automaton.n in
  List.init (max 0 (n - 1)) (fun a ->
      let pi = transposition n a (a + 1) in
      Analysis.Symmetry.generator
        ~name:(Printf.sprintf "swap(%d,%d)" a (a + 1))
        ~on_state:(apply_state pi) ~on_action:(apply_action pi))

let pred p = (Core.Pred.name p, fun s -> Core.Pred.mem p s)

let spec ?(extra = []) (params : Automaton.params) =
  let rungs =
    List.init
      (params.Automaton.bound + 1)
      (fun d -> pred (Automaton.at_least params d))
  in
  Analysis.Symmetry.spec ~preds:(rungs @ extra) (generators params)
