(** Declared symmetries of the shared-coin automaton.

    The counter is shared state and the start clocks are uniform, so
    any process permutation (acting on the clock array and the [Flip]
    index) is a candidate automorphism; adjacent transpositions are
    declared and generate the full symmetric group.  The random-walk
    ladder rungs ([|counter| >= d]) are registered as invariant
    predicates -- they do not mention processes at all. *)

val generators :
  Automaton.params ->
  (Automaton.state, Automaton.action) Analysis.Symmetry.generator list

val spec :
  ?extra:(string * (Automaton.state -> bool)) list ->
  Automaton.params ->
  (Automaton.state, Automaton.action) Analysis.Symmetry.spec
