(** Analysis of the shared-coin protocol by the paper's method, and
    where the method's composition is loose.

    Ladder (each rung discharged exhaustively): from any state with
    [|counter| >= d], the very next flip -- due within one time unit --
    moves outward with probability 1/2, so

    {v at_least(d) -1->_{1/2} at_least(d+1) v}

    Theorem 3.4 composes the rungs into

    {v any state -bound->_{2^-bound} decided v}

    which is {e valid} but exponentially loose: the counter is a fair
    random walk whose exit time from [(-bound, bound)] is [bound^2]
    flips in expectation regardless of scheduling, i.e. about
    [bound^2 / n] time units at the forced flip rate.  {!direct_bound}
    and {!expected_exact} quantify the gap. *)

type instance = {
  params : Automaton.params;
  expl : (Automaton.state, Automaton.action) Mdp.Explore.t;
  arena : (Automaton.state, Automaton.action) Mdp.Arena.t;
      (** [expl] compiled once with the model's tick mask. *)
  sym : Analysis.Symmetry.certificate option;
      (** present iff the fragment is the certified orbit quotient *)
}

(** [sym] (default [Off]) requests orbit-reduced exploration under the
    full process-permutation group ({!Symmetry.spec}). *)
val build :
  ?max_states:int -> ?g:int -> ?k:int -> ?sym:Analysis.Symmetry.mode ->
  n:int -> bound:int -> unit -> instance

type arrow = {
  label : string;
  time : Proba.Rational.t;
  prob : Proba.Rational.t;
  attained : Proba.Rational.t;
  pre_states : int;
  claim : Automaton.state Core.Claim.t option;
}

(** The rungs [d = 0, ..., bound-1]. *)
val arrows : instance -> arrow list

(** [at_least 0 -bound->_{2^-bound} at_least bound] via Theorem 3.4. *)
val composed : instance -> (Automaton.state Core.Claim.t, string) result

(** Exact minimum probability of deciding within [bound] time units
    (the composed claim's horizon): shows how loose [2^-bound] is. *)
val direct_bound : instance -> Proba.Rational.t

(** Worst-case expected decision time measured by value iteration, in
    time units.  Theory: [bound^2 / n] (the adversary minimizes the
    flip rate but cannot bias the walk). *)
val expected_exact : instance -> float

(** The classical prediction [bound^2 / n]. *)
val expected_theory : instance -> float

(** {!expected_theory} from the parameters alone (no exploration). *)
val theory : Automaton.params -> float

val liveness_holds : instance -> bool
