module Q = Proba.Rational

type instance = {
  params : Automaton.params;
  expl : (Automaton.state, Automaton.action) Mdp.Explore.t;
  arena : (Automaton.state, Automaton.action) Mdp.Arena.t;
  sym : Analysis.Symmetry.certificate option;
}

let build ?max_states ?(g = 1) ?(k = 1) ?(sym = Analysis.Symmetry.Off) ~n
    ~bound () =
  let params = { Automaton.n; bound; g; k } in
  let expl, cert =
    Analysis.Symmetry.explored ~model:"shared_coin" ~mode:sym ?max_states
      (Symmetry.spec params) (Automaton.make params)
  in
  { params; expl; sym = cert;
    arena = Mdp.Arena.compile ~is_tick:Automaton.is_tick expl }

type arrow = {
  label : string;
  time : Q.t;
  prob : Q.t;
  attained : Q.t;
  pre_states : int;
  claim : Automaton.state Core.Claim.t option;
}

let schema = Core.Schema.unit_time

let rung inst d =
  let result =
    Mdp.Checker.check_arrow inst.arena
      ~granularity:inst.params.Automaton.g ~schema
      ~pre:(Automaton.at_least inst.params d)
      ~post:(Automaton.at_least inst.params (d + 1))
      ~time:Q.one ~prob:Q.half
  in
  { label = Printf.sprintf "D%d" d;
    time = Q.one; prob = Q.half;
    attained = result.Mdp.Checker.attained;
    pre_states = result.Mdp.Checker.pre_states;
    claim = result.Mdp.Checker.claim }

let rungs inst = List.init inst.params.Automaton.bound (fun d -> d)

let arrows inst = List.map (rung inst) (rungs inst)

let composed inst =
  let claims =
    List.map
      (fun d ->
         match (rung inst d).claim with
         | Some c -> Ok c
         | None -> Error (Printf.sprintf "rung D%d failed" d))
      (rungs inst)
  in
  let rec sequence = function
    | [] -> Ok []
    | Ok x :: rest -> Result.map (fun xs -> x :: xs) (sequence rest)
    | Error e :: _ -> Error e
  in
  match sequence claims with
  | Error e -> Error e
  | Ok [] -> Error "bound too small"
  | Ok claims ->
    (try Ok (Core.Claim.compose_all claims)
     with Core.Claim.Rule_violation msg -> Error msg)

let decided_pred inst =
  Automaton.at_least inst.params inst.params.Automaton.bound

let direct_bound inst =
  let target = Mdp.Arena.indicator inst.arena (decided_pred inst) in
  let ticks =
    Core.Timed.within ~granularity:inst.params.Automaton.g
      ~time:(Q.of_int inst.params.Automaton.bound)
  in
  let values = Mdp.Finite_horizon.min_reach inst.arena ~target ~ticks in
  let best, _, _ =
    Mdp.Checker.min_prob_over inst.arena values
      (Automaton.at_least inst.params 0)
  in
  best

let expected_exact inst =
  let target = Mdp.Arena.indicator inst.arena (decided_pred inst) in
  let values =
    Mdp.Expected_time.max_expected_ticks inst.arena ~target ()
  in
  match Mdp.Arena.index inst.arena (Automaton.start inst.params) with
  | Some i -> values.(i) /. float_of_int inst.params.Automaton.g
  | None -> nan

let theory (p : Automaton.params) =
  let b = float_of_int p.Automaton.bound in
  b *. b /. float_of_int p.Automaton.n

let expected_theory inst = theory inst.params

let liveness_holds inst =
  let target = Mdp.Arena.indicator inst.arena (decided_pred inst) in
  let always = Mdp.Qualitative.always_reaches inst.arena ~target in
  Array.for_all (fun b -> b) always
