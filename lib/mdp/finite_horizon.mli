(** Exact time-bounded reachability under all adversaries.

    Computes, by backward induction with exact rational arithmetic, the
    minimum (or maximum) over all adversaries of the probability of
    reaching a target set within a given number of time units -- the
    quantity bounded by a statement [U -t->_p U'] (Definition 3.1).

    Time is carried by the arena's precomputed tick mask (see
    {!Arena}): the horizon counts ticks, and non-tick steps take zero
    time.  Within one tick layer the Bellman operator is iterated to
    its fixpoint; this terminates exactly when zero-time cycles cannot
    carry probabilistic mass around a loop, which holds for automata
    whose non-tick steps consume a per-slot budget (the digital-clock
    construction used by the case studies).  If the layer fixpoint
    fails to close after [num_states + 2] sweeps, {!No_convergence} is
    raised rather than returning an unsound answer.

    Quantification is over all non-halting adversaries: the adversary
    must pick some enabled step when one exists.  Halting at will would
    make every minimum trivially zero; the timing schemas of the paper
    (e.g. [Unit-Time]) likewise force time to keep flowing.

    Every entry point accepts [?pool].  With a pool (explicit or the
    session default installed by [--domains]), layer sweeps run as
    double-buffered Jacobi iterations split across the pool's domains;
    the chunk grid depends only on the state count, so the results are
    bit-identical for any number of domains.  Without a pool the legacy
    sequential in-place schedule runs; for the exact numeric types both
    schedules converge to the same fixpoint (see docs/PERFORMANCE.md).

    The engines read the arena's probability planes directly (exact
    plane for rationals, the memoized dyadic plane for the fast path,
    the float plane for the floating-point twins); branch order is the
    exploration order, so values are bit-identical to the historical
    path that converted per call. *)

exception No_convergence of string

(** [min_reach arena ~target ~ticks] gives, per state index, the
    minimum over all adversaries of the probability that a [target]
    state is visited within [ticks] ticks (a state already in [target]
    has value 1).  Raises [Invalid_argument] if [ticks < 0].

    [?plane] (default: {!Plane.get_default}) selects the sweeping
    strategy; the returned rationals are bit-identical either way.
    Under {!Plane.Interval} each layer runs an outward-rounded
    interval fixpoint first and recomputes exactly only the residue
    states whose interval stayed wide (see docs/PERFORMANCE.md).
    Under {!Plane.Exact}: when every transition probability is dyadic
    (the case for all fair-coin protocols) the computation runs on
    {!Proba.Dyadic} arithmetic -- exactly the same results, several
    times faster than general rationals; otherwise it falls back
    transparently to pure rationals. *)
val min_reach :
  ?pool:Parallel.Pool.t ->
  ?plane:Plane.t ->
  ('s, 'a) Arena.t -> target:bool array -> ticks:int ->
  Proba.Rational.t array

(** Maximum over all adversaries (best-case scheduling). *)
val max_reach :
  ?pool:Parallel.Pool.t ->
  ?plane:Plane.t ->
  ('s, 'a) Arena.t -> target:bool array -> ticks:int ->
  Proba.Rational.t array

(** [min_reach_with_policy] additionally returns an optimal memoryless
    (per-layer) adversary: [policy.(t).(s)] is the index of the step the
    minimizing adversary takes at state [s] with [t] ticks of budget
    remaining ([-1] when the state is in the target, or terminal). *)
val min_reach_with_policy :
  ?pool:Parallel.Pool.t ->
  ('s, 'a) Arena.t -> target:bool array -> ticks:int ->
  Proba.Rational.t array * int array array

(** {1 Step-bounded variants (untimed automata)}

    Here the horizon counts steps (the tick mask is ignored), so no
    inner fixpoint is needed. *)

val min_reach_steps :
  ?pool:Parallel.Pool.t ->
  ('s, 'a) Arena.t -> target:bool array -> steps:int ->
  Proba.Rational.t array

val max_reach_steps :
  ?pool:Parallel.Pool.t ->
  ('s, 'a) Arena.t -> target:bool array -> steps:int ->
  Proba.Rational.t array

(** {1 Floating-point twins}

    Identical layered algorithm with IEEE doubles instead of exact
    rationals, reading the arena's float plane: roughly an order of
    magnitude faster and far lighter on allocation, for exploratory
    sweeps at sizes the exact engine cannot reach.  Values are not
    certificates; claims must still be discharged by the exact
    functions above. *)

val min_reach_float :
  ?pool:Parallel.Pool.t ->
  ('s, 'a) Arena.t -> target:bool array -> ticks:int -> float array

val max_reach_float :
  ?pool:Parallel.Pool.t ->
  ('s, 'a) Arena.t -> target:bool array -> ticks:int -> float array

(** {1 Cross-checking}

    The pure-rational engines (no dyadic fast path), exposed so tests
    and benches can compare the two exact implementations. *)

val min_reach_rational :
  ?pool:Parallel.Pool.t ->
  ('s, 'a) Arena.t -> target:bool array -> ticks:int ->
  Proba.Rational.t array

val max_reach_rational :
  ?pool:Parallel.Pool.t ->
  ('s, 'a) Arena.t -> target:bool array -> ticks:int ->
  Proba.Rational.t array
