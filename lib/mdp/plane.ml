(* Probability-plane selection for the certifying engines.

   [Interval] (the default) sweeps the outward-rounded interval plane
   first and re-derives exact rationals only for residue states;
   [Exact] is the escape hatch that forces the legacy pure-exact
   sweeps.  Both planes produce bit-identical verdicts and bounds —
   the interval pass is an oracle, never an answer — so the choice is
   purely about speed.

   The default and the skip counters are process-global [Atomic]s:
   engines run inside worker domains ([Parallel.Pool]) and the server
   mutates the default from the control domain. *)

type t = Exact | Interval

let to_string = function Exact -> "exact" | Interval -> "interval"

let default = Atomic.make Interval
let set_default m = Atomic.set default m

(* Per-domain ambient override, for callers that must scope a plane to
   one request instead of mutating the process default ([prtb serve]
   workers answering a [plane=...] wire field).  Domain-local so
   concurrent requests with different planes cannot race each other's
   choice; worker-pool domains spawned by an engine fall back to the
   process default, which only costs them the oracle, never the
   verdict. *)
let ambient : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_ambient p f =
  let cell = Domain.DLS.get ambient in
  let saved = !cell in
  cell := Some p;
  Fun.protect ~finally:(fun () -> cell := saved) f

let get_default () =
  match !(Domain.DLS.get ambient) with
  | Some p -> p
  | None -> Atomic.get default

let resolve = function Some m -> m | None -> get_default ()

(* ------------------------------------------------------------------ *)
(* Interval-pass statistics (surfaced by [prtb check --stats]). *)

type stats = {
  interval_passes : int;
  point_states : int;
  residue_states : int;
  exact_fallbacks : int;
}

let interval_passes = Atomic.make 0
let point_states = Atomic.make 0
let residue_states = Atomic.make 0
let exact_fallbacks = Atomic.make 0

let record_pass ~points ~residue =
  ignore (Atomic.fetch_and_add interval_passes 1);
  ignore (Atomic.fetch_and_add point_states points);
  ignore (Atomic.fetch_and_add residue_states residue)

let record_fallback () = ignore (Atomic.fetch_and_add exact_fallbacks 1)

let reset_stats () =
  Atomic.set interval_passes 0;
  Atomic.set point_states 0;
  Atomic.set residue_states 0;
  Atomic.set exact_fallbacks 0

let stats () =
  {
    interval_passes = Atomic.get interval_passes;
    point_states = Atomic.get point_states;
    residue_states = Atomic.get residue_states;
    exact_fallbacks = Atomic.get exact_fallbacks;
  }

(* When no engine consulted the interval plane at all (support-only
   runs such as [Qualitative] fixpoints, or --plane exact), printing
   zero counters reads as "the interval oracle decided everything with
   nothing left over"; report n/a instead so the two situations are
   distinguishable from the --stats output alone. *)
let pp_stats fmt s =
  if s.interval_passes = 0 && s.exact_fallbacks = 0 then
    Format.fprintf fmt
      "plane: interval passes: n/a (no engine consulted the interval \
       plane in this run)"
  else begin
    let total = s.point_states + s.residue_states in
    let residue_pct =
      if total = 0 then 0.0
      else 100.0 *. float_of_int s.residue_states /. float_of_int total
    in
    Format.fprintf fmt
      "plane: interval passes: %d, point states: %d, residue states: %d \
       (%.2f%%), exact fallbacks: %d"
      s.interval_passes s.point_states s.residue_states residue_pct
      s.exact_fallbacks
  end
