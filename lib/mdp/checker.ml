module Q = Proba.Rational

type ('s, 'a) result = {
  claim : 's Core.Claim.t option;
  attained : Q.t;
  witness : 's option;
  pre_states : int;
}

let min_prob_over a values pred =
  let n = Arena.num_states a in
  let best = ref Q.one in
  let witness = ref None in
  let count = ref 0 in
  for i = 0 to n - 1 do
    let s = Arena.state a i in
    if Core.Pred.mem pred s then begin
      incr count;
      if !witness = None || Q.lt values.(i) !best then begin
        best := values.(i);
        witness := Some s
      end
    end
  done;
  (!best, !witness, !count)

(* [?plane] only selects the sweeping strategy of the backward
   induction; [attained] (which is embedded in the evidence string) is
   bit-identical on either plane. *)
let check_arrow ?plane a ~granularity ~schema ~pre ~post ~time ~prob =
  let ticks = Core.Timed.within ~granularity ~time in
  let target = Arena.indicator a post in
  let values = Finite_horizon.min_reach ?plane a ~target ~ticks in
  let attained, witness, pre_states = min_prob_over a values pre in
  let claim =
    if Q.geq attained prob then
      Some
        (Core.Claim.checked
           ~evidence:
             (Printf.sprintf
                "exact backward induction: min P[reach %s within %s] = %s \
                 over %d reachable %s-states (%d states total, g=%d)"
                (Core.Pred.name post) (Q.to_string time)
                (Q.to_string attained) pre_states (Core.Pred.name pre)
                (Arena.num_states a) granularity)
           ~schema ~pre ~post ~time ~prob ())
    else None
  in
  { claim; attained; witness; pre_states }

let verify_inclusion a sub sup =
  let states =
    Array.to_list (Array.init (Arena.num_states a) (Arena.state a))
  in
  Core.Inclusion.verify ~states sub sup
