type verdict =
  | Ok
  | Probabilistic_zero_time_cycle of int list

(* Zero-time adjacency and, per edge, whether the underlying step is
   probabilistic (more than one outcome).  Reads the arena's
   precomputed tick mask and CSR rows. *)
let zero_time_edges (a : _ Arena.t) i =
  let acc = ref [] in
  for k = a.Arena.step_off.(i + 1) - 1 downto a.Arena.step_off.(i) do
    if not a.Arena.tick.(k) then begin
      let lo = a.Arena.out_off.(k) and hi = a.Arena.out_off.(k + 1) in
      let probabilistic = hi - lo > 1 in
      for o = hi - 1 downto lo do
        acc := (a.Arena.tgt.(o), probabilistic) :: !acc
      done
    end
  done;
  !acc

(* Iterative Tarjan SCC over the zero-time graph. *)
let sccs (a : _ Arena.t) =
  let n = a.Arena.n in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let component = Array.make n (-1) in
  let num_components = ref 0 in
  let adjacency =
    Array.init n (fun i -> List.map fst (zero_time_edges a i))
  in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      (* Explicit DFS stack: (node, remaining successors). *)
      let call = Stack.create () in
      let visit v =
        index.(v) <- !counter;
        lowlink.(v) <- !counter;
        incr counter;
        stack := v :: !stack;
        on_stack.(v) <- true;
        Stack.push (v, ref adjacency.(v)) call
      in
      visit root;
      while not (Stack.is_empty call) do
        let v, succs = Stack.top call in
        match !succs with
        | w :: rest ->
          succs := rest;
          if index.(w) < 0 then visit w
          else if on_stack.(w) then
            lowlink.(v) <- Stdlib.min lowlink.(v) index.(w)
        | [] ->
          ignore (Stack.pop call);
          (match Stack.top_opt call with
           | Some (parent, _) ->
             lowlink.(parent) <- Stdlib.min lowlink.(parent) lowlink.(v)
           | None -> ());
          if lowlink.(v) = index.(v) then begin
            let c = !num_components in
            incr num_components;
            let rec pop () =
              match !stack with
              | [] -> ()
              | w :: rest ->
                stack := rest;
                on_stack.(w) <- false;
                component.(w) <- c;
                if w <> v then pop ()
            in
            pop ()
          end
      done
    end
  done;
  component

let check (a : _ Arena.t) =
  let component = sccs a in
  let n = a.Arena.n in
  let bad = ref None in
  (try
     for i = 0 to n - 1 do
       List.iter
         (fun (j, probabilistic) ->
            if probabilistic && component.(i) = component.(j) then begin
              bad := Some component.(i);
              raise Exit
            end)
         (zero_time_edges a i)
     done
   with Exit -> ());
  match !bad with
  | None -> Ok
  | Some c ->
    let members = ref [] in
    for i = n - 1 downto 0 do
      if component.(i) = c then members := i :: !members
    done;
    Probabilistic_zero_time_cycle !members

let is_well_formed a = check a = Ok
