(** Discharging [U -t->_p U'] leaves by exhaustive model checking.

    This is the bridge between the MDP engine and the proof DSL of
    {!Core.Claim}: it computes the exact minimum, over all adversaries
    of the structurally encoded schema, of the probability of reaching
    [post] within [time], over every reachable state satisfying [pre],
    and produces a certified claim when the minimum meets the requested
    bound [prob].

    The result always reports the attained minimum and a witness state,
    so experiments can display how tight the paper's bound is. *)

type ('s, 'a) result = {
  claim : 's Core.Claim.t option;
      (** present iff the bound holds on every pre-state *)
  attained : Proba.Rational.t;
      (** the exact minimum over pre-states (1 if no pre-state exists) *)
  witness : 's option;  (** a pre-state attaining the minimum *)
  pre_states : int;  (** number of reachable pre-states checked *)
}

(** [check_arrow arena ~granularity ~schema ~pre ~post ~time ~prob]
    verifies the statement [pre -time->_prob post] by exact backward
    induction over [Core.Timed.within ~granularity ~time] ticks.
    [granularity] is the number of ticks per paper time unit; tick
    structure comes from the arena's precomputed mask.  Raises
    [Invalid_argument] if [time * granularity] is not integral.

    [?plane] is forwarded to {!Finite_horizon.min_reach}; the verdict,
    [attained], and the evidence string are bit-identical on either
    plane. *)
val check_arrow :
  ?plane:Plane.t ->
  ('s, 'a) Arena.t -> granularity:int ->
  schema:Core.Schema.t -> pre:'s Core.Pred.t -> post:'s Core.Pred.t ->
  time:Proba.Rational.t -> prob:Proba.Rational.t -> ('s, 'a) result

(** [min_prob_over arena values pred] folds a value vector over the
    states satisfying [pred]: the minimum and a witness. *)
val min_prob_over :
  ('s, 'a) Arena.t -> Proba.Rational.t array -> 's Core.Pred.t ->
  Proba.Rational.t * 's option * int

(** [verify_inclusion arena sub sup] checks [sub ⊆ sup] over the
    reachable states, yielding a certificate for
    {!Core.Claim.strengthen_pre} / {!Core.Claim.weaken_post}. *)
val verify_inclusion :
  ('s, 'a) Arena.t -> 's Core.Pred.t -> 's Core.Pred.t ->
  's Core.Inclusion.t option
