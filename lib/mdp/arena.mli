(** Compiled CSR (compressed-sparse-row) form of an explored fragment.

    {!Explore.t} is the discovery structure: pointer-heavy
    [step array array] rows of boxed [(index, rational)] tuples, built
    incrementally by BFS.  Every engine question -- backward induction,
    value iteration, qualitative fixpoints, SCCs, bisimulation, export
    -- is a traversal of that same transition structure, so the arena
    flattens it once into dense parallel arrays and every engine reads
    the flat form:

    - [step_off.(i) .. step_off.(i+1) - 1] are the step indices of
      state [i] (CSR row pointers; length [num_states + 1]);
    - [out_off.(k) .. out_off.(k+1) - 1] are the branch indices of
      step [k] (length [num_choices + 1]);
    - [tgt.(o)] is the target state of branch [o], with its
      probability stored once per plane: exact in [prob_q.(o)], as an
      IEEE double in [prob_f.(o)] (the float plane is
      [Rational.to_float] of the exact plane, precomputed so
      float sweeps never convert in the inner loop);
    - [tick.(k)] is the precomputed tick mask -- this replaces the
      [~is_tick] closure formerly threaded through every engine
      signature;
    - [actions.(k)] is the original action of step [k].

    Step and branch order is exactly the {!Explore} order, so
    arithmetic performed in branch order is bit-identical to the
    pre-compiled path.

    Budgeted partial fragments compile unchanged: frontier states
    (indices [>= num_expanded]) have empty step rows, which downstream
    sweeps treat as stuck -- the same under-approximation semantics as
    {!Explore.partial}. *)

type ('s, 'a) t = private {
  expl : ('s, 'a) Explore.t;  (** the fragment this was compiled from *)
  n : int;  (** number of states *)
  expanded : int;  (** states whose steps were computed *)
  step_off : int array;  (** state -> step range; length [n + 1] *)
  out_off : int array;  (** step -> branch range; length [num_choices + 1] *)
  tgt : int array;  (** branch -> target state; length [num_branches] *)
  prob_q : Proba.Rational.t array;  (** exact probability plane *)
  prob_f : float array;  (** float probability plane (same order) *)
  tick : bool array;  (** per-step tick mask *)
  actions : 'a array;  (** per-step original action *)
  dyadic : Proba.Dyadic.t array option Atomic.t;
      (** memoized dyadic plane; use {!dyadic_plane} *)
  interval : (float array * float array) option Atomic.t;
      (** memoized interval plane; use {!interval_plane} *)
  fp : string option Atomic.t;
      (** memoized structural fingerprint; use {!fingerprint} *)
}

(** [compile ?is_tick expl] flattens a fragment.  Without [is_tick] the
    tick mask is all-[false] (every step is zero-time), which is what
    the untimed step-bounded engines use. *)
val compile : ?is_tick:('a -> bool) -> ('s, 'a) Explore.t -> ('s, 'a) t

(** [of_pa ?max_states ?is_tick pa] = explore then compile. *)
val of_pa :
  ?max_states:int -> ?is_tick:('a -> bool) -> ('s, 'a) Core.Pa.t ->
  ('s, 'a) t

(** [assemble ~step_off ~out_off ~tgt ~prob_q ~tick ~actions expl]
    rebuilds an arena from CSR arrays produced by a previous {!compile}
    (an arena snapshot) without re-flattening the fragment; {!compiles}
    is {e not} incremented.  The float plane is recomputed from
    [prob_q] exactly as {!compile} does, so loaded arenas are
    bit-identical to freshly compiled ones; derived-plane memos start
    empty and fill on first use.  Raises [Invalid_argument] when the
    array lengths are mutually inconsistent. *)
val assemble :
  step_off:int array ->
  out_off:int array ->
  tgt:int array ->
  prob_q:Proba.Rational.t array ->
  tick:bool array ->
  actions:'a array ->
  ('s, 'a) Explore.t ->
  ('s, 'a) t

(** The dyadic probability plane, converted from [prob_q] on first use
    and memoized.  Raises {!Proba.Dyadic.Not_dyadic} (caching nothing)
    when some probability is not a dyadic rational.  Domain-safe: the
    memo is a write-once [Atomic]; racing domains both compute the
    identical plane and one copy wins. *)
val dyadic_plane : ('s, 'a) t -> Proba.Dyadic.t array

(** The outward-rounded interval plane as parallel [lo]/[hi] endpoint
    arrays in branch order: [lo.(o) <= prob_q.(o) <= hi.(o)] with
    correctly-rounded directed endpoints (equal whenever the
    probability is a finite double, which covers all dyadic models).
    Computed from [prob_q] on first use and memoized like
    {!dyadic_plane} (domain-safe, write-once). *)
val interval_plane : ('s, 'a) t -> float array * float array

(** A deterministic structural digest of the compiled fragment (32 hex
    characters), stamped into certificate leaves ([lib/cert]) so a
    re-checker can tell {e which} explored system a model-checking
    result talks about.  Digests the CSR skeleton, the exact
    probability plane (canonical wire bytes), the tick mask and a
    structural hash of every interned state and action in index order;
    consequently it is identical across processes, [--domains] pool
    sizes and [--plane] choices, and distinct whenever the model,
    parameters, exploration budget or symmetry quotient differ.
    Memoized (write-once [Atomic], domain-safe like the planes). *)
val fingerprint : ('s, 'a) t -> string

(** {1 Mirrored fragment accessors} *)

val explored : ('s, 'a) t -> ('s, 'a) Explore.t
val automaton : ('s, 'a) t -> ('s, 'a) Core.Pa.t
val num_states : ('s, 'a) t -> int
val num_expanded : ('s, 'a) t -> int
val is_expanded : ('s, 'a) t -> int -> bool
val is_complete : ('s, 'a) t -> bool
val num_choices : ('s, 'a) t -> int
val num_branches : ('s, 'a) t -> int
val state : ('s, 'a) t -> int -> 's
val index : ('s, 'a) t -> 's -> int option
val start_indices : ('s, 'a) t -> int list
val states_where : ('s, 'a) t -> ('s -> bool) -> int list
val indicator : ('s, 'a) t -> 's Core.Pred.t -> bool array

(** {1 Step helpers} *)

(** Number of steps enabled at a state (zero on the frontier). *)
val num_steps_of : ('s, 'a) t -> int -> int

val action : ('s, 'a) t -> step:int -> 'a
val is_tick_step : ('s, 'a) t -> step:int -> bool

(** [true] iff at least one step is a tick (i.e. the arena was
    compiled with a meaningful [is_tick]). *)
val has_tick_mask : ('s, 'a) t -> bool

(** Process-wide count of {!compile} calls (including {!of_pa}); read
    by [Models.stats]. *)
val compiles : unit -> int
