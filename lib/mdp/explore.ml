exception Too_many_states of int

type 'a step = { action : 'a; outcomes : (int * Proba.Rational.t) array }

type ('s, 'a) t = {
  pa : ('s, 'a) Core.Pa.t;
  states : 's array;
  table : ('s, int) Funtbl.t;
  steps : 'a step array array;
  start_indices : int list;
  expanded : int;
  canon : 's -> 's;  (** identity unless the fragment is a quotient *)
}

type ('s, 'a) partial = {
  fragment : ('s, 'a) t;
  complete : bool;
  frontier : int;
  stopped : string option;
}

(* Process-wide count of BFS explorations, surfaced through
   [Models.stats] so the CLI can assert that memoization collapses
   repeated model uses into one exploration.  Atomic because several
   worker domains may explore distinct models concurrently under
   [prtb serve]. *)
let explorations_counter = Atomic.make 0
let explorations () = Atomic.get explorations_counter

(* Shared BFS.  Interning order is FIFO visitation order, so states are
   expanded in index order and an incomplete run's frontier is exactly
   the index suffix [expanded ..].  [stop] is consulted before each
   expansion; [hard_max] reproduces the legacy contract of {!run}
   (raise the moment a state beyond the bound would be interned). *)
let bfs ?hard_max ?(stop = fun ~interned:_ -> None) ?(canon = fun s -> s) m =
  Atomic.incr explorations_counter;
  let table =
    Funtbl.create ~equal:(Core.Pa.equal_state m) ~hash:(Core.Pa.hash_state m)
      1024
  in
  let states = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let intern s =
    (* Canonicalizing before the table lookup is the whole of orbit
       reduction: every state of an orbit interns to its
       representative's index, so the BFS explores the quotient MDP and
       everything downstream (arena compilation included) is oblivious.
       [find_or_add] interns with a single hash-and-probe; a raised
       [Too_many_states] leaves the table untouched. *)
    let s = canon s in
    Funtbl.find_or_add table s (fun () ->
        (match hard_max with
         | Some bound when !count >= bound -> raise (Too_many_states bound)
         | Some _ | None -> ());
        let i = !count in
        incr count;
        states := s :: !states;
        Queue.add s queue;
        i)
  in
  let start_indices = List.map intern (Core.Pa.start m) in
  let steps_acc = ref [] in
  let expanded = ref 0 in
  let stopped = ref None in
  while !stopped = None && not (Queue.is_empty queue) do
    Core.Budget.poll ();
    match stop ~interned:!count with
    | Some _ as reason -> stopped := reason
    | None ->
      let s = Queue.take queue in
      let steps =
        List.map
          (fun step ->
             let outcomes =
               List.map
                 (fun (target, w) -> (intern target, w))
                 (Proba.Dist.support step.Core.Pa.dist)
             in
             (* Distinct support states can intern to one index when the
                PA's state equality is coarser than the equality the
                distribution was merged under; coalesce them (keeping
                first-occurrence order) so no downstream sweep pays for
                split masses. *)
             let rec coalesce acc = function
               | [] -> List.rev acc
               | (i, w) :: rest ->
                 let same, rest =
                   List.partition (fun (j, _) -> j = i) rest
                 in
                 let w =
                   List.fold_left
                     (fun w (_, w') -> Proba.Rational.add w w')
                     w same
                 in
                 coalesce ((i, w) :: acc) rest
             in
             let outcomes = coalesce [] outcomes in
             { action = step.Core.Pa.action;
               outcomes = Array.of_list outcomes })
          (Core.Pa.enabled m s)
      in
      steps_acc := Array.of_list steps :: !steps_acc;
      incr expanded
  done;
  let n = !count in
  let states_arr =
    match !states with
    | [] -> [||]
    | witness :: _ ->
      let arr = Array.make n witness in
      List.iteri (fun k s -> arr.(n - 1 - k) <- s) !states;
      arr
  in
  (* Frontier states (indices >= expanded) keep the empty step array:
     downstream analyses treat them as stuck, which under-approximates
     reachability -- the sound direction for min-reach lower bounds. *)
  let steps_arr = Array.make n [||] in
  List.iteri
    (fun k st -> steps_arr.(!expanded - 1 - k) <- st)
    !steps_acc;
  ( { pa = m; states = states_arr; table; steps = steps_arr; start_indices;
      expanded = !expanded; canon },
    !stopped )

let run ?(max_states = 5_000_000) ?canon m =
  let fragment, _ = bfs ~hard_max:max_states ?canon m in
  fragment

(* Rehydration constructor for snapshot loading: rebuilds the intern
   table from the state array instead of re-running the BFS, so it does
   NOT bump [explorations_counter] -- that is the whole point of
   snapshots, and the CI smoke asserts the counter stays at zero. *)
let of_parts ?(canon = fun s -> s) ~pa ~states ~steps ~start_indices
    ~expanded () =
  let n = Array.length states in
  if Array.length steps <> n then
    invalid_arg "Explore.of_parts: steps/states length mismatch";
  if expanded < 0 || expanded > n then
    invalid_arg "Explore.of_parts: expanded out of range";
  let table =
    Funtbl.create ~equal:(Core.Pa.equal_state pa) ~hash:(Core.Pa.hash_state pa)
      (max 16 (2 * n))
  in
  Array.iteri (fun i s -> Funtbl.add table s i) states;
  List.iter
    (fun i ->
       if i < 0 || i >= n then
         invalid_arg "Explore.of_parts: start index out of range")
    start_indices;
  { pa; states; table; steps; start_indices; expanded; canon }

let run_budgeted ?(budget = Core.Budget.unlimited) ?clock ?canon m =
  let clock =
    match clock with Some c -> c | None -> Core.Budget.start budget
  in
  let stop ~interned = Core.Budget.exhausted ~states:interned clock in
  let fragment, stopped = bfs ~stop ?canon m in
  { fragment;
    complete = stopped = None;
    frontier = Array.length fragment.states - fragment.expanded;
    stopped }

let automaton e = e.pa
let num_states e = Array.length e.states
let num_expanded e = e.expanded
let is_expanded e i = i < e.expanded
let is_complete e = e.expanded = Array.length e.states

let num_choices e =
  Array.fold_left (fun acc st -> acc + Array.length st) 0 e.steps

let num_branches e =
  Array.fold_left
    (fun acc st ->
       Array.fold_left (fun acc s -> acc + Array.length s.outcomes) acc st)
    0 e.steps

let state e i = e.states.(i)
let index e s = Funtbl.find e.table (e.canon s)
let start_indices e = e.start_indices
let steps e i = e.steps.(i)

let states_where e pred =
  let acc = ref [] in
  for i = Array.length e.states - 1 downto 0 do
    if pred e.states.(i) then acc := i :: !acc
  done;
  !acc

let indicator e pred =
  Array.map (fun s -> Core.Pred.mem pred s) e.states

let check_invariant e pred =
  let n = Array.length e.states in
  let rec go i =
    if i >= n then None
    else if not (pred e.states.(i)) then Some e.states.(i)
    else go (i + 1)
  in
  go 0
