(** Strong probabilistic bisimulation minimization (Larsen-Skou style),
    by partition refinement over the compiled arena.

    Two states are bisimilar when they carry the same label, and for
    every step of one there is an equally-labelled step of the other
    inducing the same probability distribution over equivalence
    classes.  Bisimilar states have identical extremal reachability
    probabilities and expected times with respect to any target that is
    a union of initial-partition blocks, so analyses can run on the
    quotient instead.

    On symmetric systems the reduction is substantial: the ring
    instances of the dining philosophers are invariant under rotation,
    and the quotient factors that symmetry out automatically. *)

(** [refine arena ~labels ?action_key ?plane ()] computes the coarsest
    bisimulation partition refining the [labels] partition (an
    arbitrary integer labelling of states -- e.g. 1 for target states
    and 0 elsewhere).  [action_key] collapses actions before matching
    steps (default: structural identity), which is how symmetric
    systems are minimized: mapping [flip_0 .. flip_n] all to ["flip"]
    lets rotations of the ring fall into the same class.  Returns the
    block index of every state.

    [?plane] (default: {!Plane.get_default}) selects how per-block
    weights are compared.  Under {!Plane.Interval} each state's step
    signatures are first summed on the outward-rounded interval plane;
    states whose sums all collapse to points (every state of a dyadic
    model) are grouped by those doubles directly, and only the residue
    recomputes exact rational signatures.  The resulting partition --
    including block numbering -- is identical on both planes. *)
val refine :
  ('s, 'a) Arena.t -> labels:int array -> ?action_key:('a -> string) ->
  ?plane:Plane.t -> unit -> int array

val num_blocks : int array -> int

(** [quotient arena partition ?action_key ()] builds the quotient
    automaton over block indices: each block's steps are the
    (deduplicated) class-distributions of any representative.  The
    start state is the block of the first start state. *)
val quotient :
  ('s, 'a) Arena.t -> int array -> ?action_key:('a -> string) -> unit ->
  (int, string) Core.Pa.t
