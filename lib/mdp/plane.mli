(** Probability-plane selection for the certifying engines.

    [Interval] (the default) lets threshold-style engines sweep the
    outward-rounded {!Proba.Interval} plane first and re-derive exact
    rationals only for the residue — states whose interval did not
    collapse to a point.  [Exact] forces the legacy pure-exact sweeps.
    Verdicts and all reported exact bounds are bit-identical on both
    planes; the interval pass is an optimization oracle, never an
    answer. *)

type t = Exact | Interval

val to_string : t -> string

(** Process-global default plane (initially [Interval]); stored in an
    [Atomic.t] because engines run inside worker domains. *)

val set_default : t -> unit

val get_default : unit -> t

(** [with_ambient p f] runs [f ()] with [p] as the ambient plane for
    the current domain: {!get_default} (and therefore {!resolve} on
    [None]) answers [p] inside [f], and the previous ambient is
    restored on exit, normal or exceptional.  Scopes a plane choice to
    one request without mutating the process default -- the server
    wires each query's [plane] field through this.  Worker-pool
    domains spawned inside [f] see the process default instead (the
    override is domain-local); that only affects which oracle those
    sweeps consult, never the verdict. *)
val with_ambient : t -> (unit -> 'a) -> 'a

(** [resolve plane] is [plane] when given, the global default
    otherwise — the convention used by every [?plane] parameter. *)
val resolve : t option -> t

(** {1 Interval-pass statistics}

    Cumulative process-global counters, surfaced by
    [prtb check --stats].  A "pass" is one interval-guided layer or
    refinement run; [point_states]/[residue_states] count how many
    per-state results the interval oracle pinned vs. left for exact
    recomputation, and [exact_fallbacks] counts layers where the
    interval fixpoint failed to close and the whole layer was redone
    exactly. *)

type stats = {
  interval_passes : int;
  point_states : int;
  residue_states : int;
  exact_fallbacks : int;
}

val record_pass : points:int -> residue:int -> unit
val record_fallback : unit -> unit
val reset_stats : unit -> unit
val stats : unit -> stats

(** Renders the counters; when no engine consulted the interval plane
    at all (support-only qualitative runs, or [--plane exact]) it
    prints ["n/a"] instead of a row of zeros, so "the oracle was never
    asked" cannot be misread as "the oracle decided everything". *)
val pp_stats : Format.formatter -> stats -> unit
