(** Static detection of probabilistic zero-time cycles.

    The exact finite-horizon engine iterates each tick layer to a
    fixpoint; that terminates exactly when no probability mass can
    cycle without consuming time.  A {e probabilistic zero-time cycle}
    -- a cycle of non-tick steps carrying at least one non-Dirac branch
    -- makes the layer fixpoint irrational/asymptotic, which
    {!Finite_horizon} reports at run time as [No_convergence].

    This module finds the problem {e statically}: it computes the
    strongly connected components of the zero-time step graph (read
    off the arena's precomputed tick mask) and flags any component
    that contains a probabilistic zero-time edge.  Well-formed
    digital-clock encodings (where every scheduling consumes per-slot
    budget) always pass.

    Cycles made purely of Dirac (probability-1) zero-time steps -- e.g.
    busy-wait self-loops -- are harmless for convergence and are not
    flagged.

    The arena must have been compiled with the model's [is_tick]; an
    arena compiled without one has an all-false tick mask, so {e every}
    step is a zero-time edge. *)

type verdict =
  | Ok
  | Probabilistic_zero_time_cycle of int list
      (** state indices of one offending strongly connected component *)

val check : ('s, 'a) Arena.t -> verdict

(** Convenience: [true] on [Ok]. *)
val is_well_formed : ('s, 'a) Arena.t -> bool
