(** Hash tables keyed by caller-supplied hash and equality functions.

    [Stdlib.Hashtbl.Make] requires a module; the automata here carry
    their state equality/hash as record fields, so exploration needs a
    table parameterized by plain functions. *)

type ('k, 'v) t

(** [create ~equal ~hash n] makes a table with initial capacity [n]. *)
val create : equal:('k -> 'k -> bool) -> hash:('k -> int) -> int -> ('k, 'v) t

val length : ('k, 'v) t -> int
val find : ('k, 'v) t -> 'k -> 'v option
val mem : ('k, 'v) t -> 'k -> bool

(** [add t k v] binds [k] to [v], replacing any previous binding. *)
val add : ('k, 'v) t -> 'k -> 'v -> unit

(** [find_or_add t k make] returns the value bound to [k], binding
    [make ()] first when absent.  One hash and one chain traversal
    either way -- the intern hot path of {!Explore} -- where
    [find]-then-[add] would hash and probe twice.  If [make] raises,
    the table is unchanged. *)
val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
