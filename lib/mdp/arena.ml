module Q = Proba.Rational

type ('s, 'a) t = {
  expl : ('s, 'a) Explore.t;
  n : int;
  expanded : int;
  step_off : int array;
  out_off : int array;
  tgt : int array;
  prob_q : Q.t array;
  prob_f : float array;
  tick : bool array;
  actions : 'a array;
  mutable dyadic : Proba.Dyadic.t array option;
}

(* Process-wide count of compilations, surfaced through [Models.stats]
   alongside [Explore.explorations].  Atomic: [prtb serve] workers may
   compile distinct models concurrently. *)
let compiles_counter = Atomic.make 0
let compiles () = Atomic.get compiles_counter

let compile ?is_tick expl =
  Atomic.incr compiles_counter;
  let n = Explore.num_states expl in
  let num_steps = Explore.num_choices expl in
  let num_branches = Explore.num_branches expl in
  let step_off = Array.make (n + 1) 0 in
  let out_off = Array.make (num_steps + 1) 0 in
  let tgt = Array.make num_branches 0 in
  let prob_q = Array.make num_branches Q.zero in
  let prob_f = Array.make num_branches 0.0 in
  let tick = Array.make num_steps false in
  let actions_rev = ref [] in
  let k = ref 0 in
  let o = ref 0 in
  for i = 0 to n - 1 do
    Array.iter
      (fun (step : _ Explore.step) ->
         out_off.(!k) <- !o;
         (match is_tick with
          | Some f -> tick.(!k) <- f step.Explore.action
          | None -> ());
         actions_rev := step.Explore.action :: !actions_rev;
         Array.iter
           (fun (j, w) ->
              tgt.(!o) <- j;
              prob_q.(!o) <- w;
              prob_f.(!o) <- Q.to_float w;
              incr o)
           step.Explore.outcomes;
         incr k)
      (Explore.steps expl i);
    step_off.(i + 1) <- !k
  done;
  out_off.(num_steps) <- !o;
  { expl;
    n;
    expanded = Explore.num_expanded expl;
    step_off;
    out_off;
    tgt;
    prob_q;
    prob_f;
    tick;
    actions = Array.of_list (List.rev !actions_rev);
    dyadic = None }

let of_pa ?max_states ?is_tick pa =
  compile ?is_tick (Explore.run ?max_states pa)

(* The dyadic plane is derived on demand and memoized; [of_rational]
   raises [Not_dyadic] before anything is cached, so a failed
   conversion leaves the arena unchanged and every later caller
   re-raises consistently. *)
let dyadic_plane a =
  match a.dyadic with
  | Some plane -> plane
  | None ->
    let plane = Array.map Proba.Dyadic.of_rational a.prob_q in
    a.dyadic <- Some plane;
    plane

let explored a = a.expl
let automaton a = Explore.automaton a.expl
let num_states a = a.n
let num_expanded a = a.expanded
let is_expanded a i = i < a.expanded
let is_complete a = a.expanded = a.n
let num_choices a = Array.length a.tick
let num_branches a = Array.length a.tgt
let state a i = Explore.state a.expl i
let index a s = Explore.index a.expl s
let start_indices a = Explore.start_indices a.expl
let states_where a pred = Explore.states_where a.expl pred
let indicator a pred = Explore.indicator a.expl pred

let num_steps_of a i = a.step_off.(i + 1) - a.step_off.(i)

let action a ~step = a.actions.(step)
let is_tick_step a ~step = a.tick.(step)

let has_tick_mask a = Array.exists (fun b -> b) a.tick
