module Q = Proba.Rational

type ('s, 'a) t = {
  expl : ('s, 'a) Explore.t;
  n : int;
  expanded : int;
  step_off : int array;
  out_off : int array;
  tgt : int array;
  prob_q : Q.t array;
  prob_f : float array;
  tick : bool array;
  actions : 'a array;
  dyadic : Proba.Dyadic.t array option Atomic.t;
  interval : (float array * float array) option Atomic.t;
  fp : string option Atomic.t;
}

(* Process-wide count of compilations, surfaced through [Models.stats]
   alongside [Explore.explorations].  Atomic: [prtb serve] workers may
   compile distinct models concurrently. *)
let compiles_counter = Atomic.make 0
let compiles () = Atomic.get compiles_counter

let compile ?is_tick expl =
  Atomic.incr compiles_counter;
  let n = Explore.num_states expl in
  let num_steps = Explore.num_choices expl in
  let num_branches = Explore.num_branches expl in
  let step_off = Array.make (n + 1) 0 in
  let out_off = Array.make (num_steps + 1) 0 in
  let tgt = Array.make num_branches 0 in
  let prob_q = Array.make num_branches Q.zero in
  let prob_f = Array.make num_branches 0.0 in
  let tick = Array.make num_steps false in
  let actions_rev = ref [] in
  let k = ref 0 in
  let o = ref 0 in
  for i = 0 to n - 1 do
    Array.iter
      (fun (step : _ Explore.step) ->
         out_off.(!k) <- !o;
         (match is_tick with
          | Some f -> tick.(!k) <- f step.Explore.action
          | None -> ());
         actions_rev := step.Explore.action :: !actions_rev;
         Array.iter
           (fun (j, w) ->
              tgt.(!o) <- j;
              prob_q.(!o) <- w;
              prob_f.(!o) <- Q.to_float w;
              incr o)
           step.Explore.outcomes;
         incr k)
      (Explore.steps expl i);
    step_off.(i + 1) <- !k
  done;
  out_off.(num_steps) <- !o;
  { expl;
    n;
    expanded = Explore.num_expanded expl;
    step_off;
    out_off;
    tgt;
    prob_q;
    prob_f;
    tick;
    actions = Array.of_list (List.rev !actions_rev);
    dyadic = Atomic.make None;
    interval = Atomic.make None;
    fp = Atomic.make None }

let of_pa ?max_states ?is_tick pa =
  compile ?is_tick (Explore.run ?max_states pa)

(* Rehydration constructor for snapshot loading: adopts CSR arrays that
   were produced by a previous [compile] instead of re-flattening the
   fragment, so it does NOT bump [compiles_counter].  The float plane is
   recomputed from the exact plane with the same [Q.to_float] as
   [compile] (bit-identical: conversion is deterministic), so snapshots
   never store derived planes.  Derived-plane memos start empty. *)
let assemble ~step_off ~out_off ~tgt ~prob_q ~tick ~actions expl =
  let n = Explore.num_states expl in
  if Array.length step_off <> n + 1 then
    invalid_arg "Arena.assemble: step_off length mismatch";
  let num_steps = Array.length tick in
  if Array.length out_off <> num_steps + 1
     || Array.length actions <> num_steps
     || step_off.(n) <> num_steps then
    invalid_arg "Arena.assemble: step count mismatch";
  let num_branches = Array.length tgt in
  if Array.length prob_q <> num_branches || out_off.(num_steps) <> num_branches
  then invalid_arg "Arena.assemble: branch count mismatch";
  { expl;
    n;
    expanded = Explore.num_expanded expl;
    step_off;
    out_off;
    tgt;
    prob_q;
    prob_f = Array.map Q.to_float prob_q;
    tick;
    actions;
    dyadic = Atomic.make None;
    interval = Atomic.make None;
    fp = Atomic.make None }

(* Derived planes are computed on demand and memoized with a CAS:
   worker domains sweeping one shared arena may race here, in which
   case both compute the (identical, immutable) plane and the loser
   adopts the published copy — no lock, no torn reads. *)

(* [of_rational] raises [Not_dyadic] before anything is cached, so a
   failed conversion leaves the arena unchanged and every later caller
   re-raises consistently. *)
let dyadic_plane a =
  match Atomic.get a.dyadic with
  | Some plane -> plane
  | None ->
    let plane = Array.map Proba.Dyadic.of_rational a.prob_q in
    if Atomic.compare_and_set a.dyadic None (Some plane) then plane
    else begin
      match Atomic.get a.dyadic with
      | Some published -> published
      | None -> plane (* unreachable: the memo is write-once *)
    end

let interval_plane a =
  match Atomic.get a.interval with
  | Some plane -> plane
  | None ->
    let num_branches = Array.length a.tgt in
    let lo = Array.make num_branches 0.0 in
    let hi = Array.make num_branches 0.0 in
    for o = 0 to num_branches - 1 do
      let iv = Proba.Interval.of_rational a.prob_q.(o) in
      lo.(o) <- Proba.Interval.lo iv;
      hi.(o) <- Proba.Interval.hi iv
    done;
    let plane = (lo, hi) in
    if Atomic.compare_and_set a.interval None (Some plane) then plane
    else begin
      match Atomic.get a.interval with
      | Some published -> published
      | None -> plane
    end

(* The fingerprint digests only deterministic inputs: the CSR skeleton
   (offsets, targets), the exact probability plane rendered through
   [Rational.to_wire] (canonical bytes, Bigint-tier safe), the tick
   mask, and a structural hash of each interned state and action in
   index order.  [Stdlib.Hashtbl.hash] on immutable model values is a
   pure function of their structure, so the digest is identical across
   processes, [--domains] settings and plane choices -- none of which
   affect what was explored -- while any change to the model, its
   parameters, the exploration budget or the symmetry quotient changes
   the interned structure and therefore the digest. *)
let fingerprint a =
  match Atomic.get a.fp with
  | Some s -> s
  | None ->
    let buf = Buffer.create 8192 in
    let add_int i = Buffer.add_string buf (string_of_int i);
      Buffer.add_char buf ',' in
    Buffer.add_string buf "arena/1;";
    add_int a.n;
    add_int a.expanded;
    Array.iter add_int a.step_off;
    Array.iter add_int a.out_off;
    Array.iter add_int a.tgt;
    Array.iter
      (fun q ->
         Buffer.add_string buf (Proba.Rational.to_wire q);
         Buffer.add_char buf ',')
      a.prob_q;
    Array.iter (fun b -> Buffer.add_char buf (if b then '1' else '0'))
      a.tick;
    Buffer.add_char buf ';';
    Array.iter (fun act -> add_int (Stdlib.Hashtbl.hash act)) a.actions;
    Buffer.add_char buf ';';
    for i = 0 to a.n - 1 do
      add_int (Stdlib.Hashtbl.hash (Explore.state a.expl i))
    done;
    let s = Digest.to_hex (Digest.string (Buffer.contents buf)) in
    if Atomic.compare_and_set a.fp None (Some s) then s
    else begin
      match Atomic.get a.fp with
      | Some published -> published
      | None -> s (* unreachable: the memo is write-once *)
    end

let explored a = a.expl
let automaton a = Explore.automaton a.expl
let num_states a = a.n
let num_expanded a = a.expanded
let is_expanded a i = i < a.expanded
let is_complete a = a.expanded = a.n
let num_choices a = Array.length a.tick
let num_branches a = Array.length a.tgt
let state a i = Explore.state a.expl i
let index a s = Explore.index a.expl s
let start_indices a = Explore.start_indices a.expl
let states_where a pred = Explore.states_where a.expl pred
let indicator a pred = Explore.indicator a.expl pred

let num_steps_of a i = a.step_off.(i + 1) - a.step_off.(i)

let action a ~step = a.actions.(step)
let is_tick_step a ~step = a.tick.(step)

let has_tick_mask a = Array.exists (fun b -> b) a.tick
