(** Qualitative (probability-1) reachability: the Zuck-Pnueli-style
    baseline.

    Liveness methods for randomized algorithms (Zuck-Pnueli, and the
    proof the paper cites for the Lehmann-Rabin protocol) establish that
    progress occurs {e with probability 1} under every fair adversary,
    but produce no time bound.  This module implements that qualitative
    analysis on the compiled arena with standard graph fixpoints, so
    the benchmarks can contrast "liveness only" with the paper's
    quantitative [U -t->_p U'] bounds.

    [always_reaches] computes the set where the {e minimum} reachability
    probability is 1, i.e. where every adversary drives the system into
    the target almost surely.  The complement is built from two
    fixpoints: the largest sub-MDP the adversary can stay in while
    avoiding the target (greatest fixpoint), and the states from which
    the adversary can steer into that region with positive probability
    while avoiding the target (least fixpoint).

    These fixpoints are support-only: they read the transition
    {e structure}, never a probability plane, so {!Plane} gating does
    not apply here -- the qualitative pass is already free of exact
    arithmetic and is shared verbatim by both planes. *)

(** [always_reaches arena ~target] is the boolean vector of states where
    [Pmin(eventually target) = 1].  Terminal states count as staying
    put: a terminal non-target state never reaches the target. *)
val always_reaches : ('s, 'a) Arena.t -> target:bool array -> bool array

(** [safe_core arena ~avoid] is the largest set [S ⊆ avoid] such that
    every state of [S] is terminal or has a step whose support stays in
    [S] -- the region in which the adversary can avoid leaving [avoid]
    surely. *)
val safe_core : ('s, 'a) Arena.t -> avoid:bool array -> bool array

(** [can_avoid arena ~target] is the set where some adversary keeps the
    probability of reaching [target] below 1 (the complement of
    {!always_reaches}). *)
val can_avoid : ('s, 'a) Arena.t -> target:bool array -> bool array

(** [some_reaches_certainly arena ~target] is the set where {e some}
    adversary reaches the target with probability 1
    ([Pmax(eventually target) = 1]); the classical nested fixpoint. *)
val some_reaches_certainly :
  ('s, 'a) Arena.t -> target:bool array -> bool array
