(* Value iteration over the arena's float plane.  The historical code
   converted each rational weight with [Q.to_float] on every access in
   the inner loop; the arena precomputes exactly that conversion into
   [prob_f], so the sums below see the same doubles in the same order
   and the fixpoints are bit-identical -- just without the per-access
   conversion cost. *)

let expectation (a : _ Arena.t) v k =
  let acc = ref 0.0 in
  for o = a.Arena.out_off.(k) to a.Arena.out_off.(k + 1) - 1 do
    acc := !acc +. (a.Arena.prob_f.(o) *. v.(a.Arena.tgt.(o)))
  done;
  !acc

let state_value (a : _ Arena.t) ~finite ~target ~best v i =
  if target.(i) then 0.0
  else if not finite.(i) then infinity
  else begin
    let lo = a.Arena.step_off.(i) and hi = a.Arena.step_off.(i + 1) in
    if hi = lo then infinity
    else begin
      let acc = ref None in
      for k = lo to hi - 1 do
        let cost = if a.Arena.tick.(k) then 1.0 else 0.0 in
        let e = cost +. expectation a v k in
        match !acc with
        | None -> acc := Some e
        | Some cur -> acc := Some (best cur e)
      done;
      Option.get !acc
    end
  end

let value_iterate_seq (a : _ Arena.t) ~finite ~target ~best ~epsilon
    ~max_sweeps =
  let n = a.Arena.n in
  let v =
    Array.init n (fun i ->
        if target.(i) then 0.0
        else if finite.(i) then 0.0
        else infinity)
  in
  let sweep () =
    let delta = ref 0.0 in
    for i = 0 to n - 1 do
      if (not target.(i)) && finite.(i) then begin
        if a.Arena.step_off.(i + 1) > a.Arena.step_off.(i) then begin
          let fresh = state_value a ~finite ~target ~best v i in
          let d = Float.abs (fresh -. v.(i)) in
          if d > !delta then delta := d;
          v.(i) <- fresh
        end
        else v.(i) <- infinity
      end
    done;
    !delta
  in
  let rec go k =
    Core.Budget.poll ();
    if k > max_sweeps then
      failwith "Expected_time: value iteration did not converge"
    else if sweep () > epsilon then go (k + 1)
  in
  go 0;
  v

(* Pooled variant: double-buffered Jacobi sweeps.  Each state update
   reads only the previous iterate and the per-sweep delta is combined
   with [Float.max] (associative and order-independent), so the result
   is bit-identical for any pool size. *)
let value_iterate_par pool (a : _ Arena.t) ~finite ~target ~best ~epsilon
    ~max_sweeps =
  let n = a.Arena.n in
  let init i =
    if target.(i) then 0.0 else if finite.(i) then 0.0 else infinity
  in
  let stop = Core.Budget.deadline_stop () in
  let cur = ref (Array.init n init) in
  let nxt = ref (Array.make n 0.0) in
  let sweep () =
    let cur = !cur and nxt = !nxt in
    Parallel.Pool.map_reduce pool ?stop ~n ~init:0.0 ~combine:Float.max
      (fun i ->
         if (not target.(i)) && finite.(i)
            && a.Arena.step_off.(i + 1) > a.Arena.step_off.(i)
         then begin
           let fresh = state_value a ~finite ~target ~best cur i in
           nxt.(i) <- fresh;
           Float.abs (fresh -. cur.(i))
         end
         else begin
           nxt.(i) <- init i;
           0.0
         end)
  in
  let rec go k =
    if k > max_sweeps then
      failwith "Expected_time: value iteration did not converge"
    else if sweep () > epsilon then begin
      let t = !cur in
      cur := !nxt;
      nxt := t;
      go (k + 1)
    end
    else cur := !nxt
  in
  go 0;
  !cur

let value_iterate ?pool a ~finite ~target ~best ~epsilon ~max_sweeps =
  let pool =
    match pool with Some _ -> pool | None -> Parallel.Pool.get_default ()
  in
  match pool with
  | Some p ->
    (try value_iterate_par p a ~finite ~target ~best ~epsilon ~max_sweeps
     with Parallel.Pool.Cancelled reason ->
       raise (Core.Budget.Deadline_exceeded reason))
  | None -> value_iterate_seq a ~finite ~target ~best ~epsilon ~max_sweeps

let max_expected_ticks ?pool a ~target ?(epsilon = 1e-12)
    ?(max_sweeps = 1_000_000) () =
  let finite = Qualitative.always_reaches a ~target in
  value_iterate ?pool a ~finite ~target ~best:Float.max ~epsilon ~max_sweeps

let min_expected_ticks ?pool a ~target ?(epsilon = 1e-12)
    ?(max_sweeps = 1_000_000) () =
  let finite = Qualitative.some_reaches_certainly a ~target in
  value_iterate ?pool a ~finite ~target ~best:Float.min ~epsilon ~max_sweeps

let max_expected_ticks_with_policy ?pool (a : _ Arena.t) ~target
    ?(epsilon = 1e-12) ?(max_sweeps = 1_000_000) () =
  let finite = Qualitative.always_reaches a ~target in
  let v =
    value_iterate ?pool a ~finite ~target ~best:Float.max ~epsilon
      ~max_sweeps
  in
  let n = a.Arena.n in
  let policy =
    Array.init n (fun i ->
        if target.(i) || not finite.(i) then -1
        else begin
          let lo = a.Arena.step_off.(i) and hi = a.Arena.step_off.(i + 1) in
          if hi = lo then -1
          else begin
            let best_k = ref 0 and best_v = ref neg_infinity in
            for k = lo to hi - 1 do
              let cost = if a.Arena.tick.(k) then 1.0 else 0.0 in
              let e = cost +. expectation a v k in
              if e > !best_v then begin
                best_v := e;
                best_k := k - lo
              end
            done;
            !best_k
          end
        end)
  in
  (v, policy)
