(* Value iteration over the arena's float plane.  The historical code
   converted each rational weight with [Q.to_float] on every access in
   the inner loop; the arena precomputes exactly that conversion into
   [prob_f], so the sums below see the same doubles in the same order
   and the fixpoints are bit-identical -- just without the per-access
   conversion cost. *)

(* Which way the adversary optimizes.  Passed as a variant (rather
   than [Float.max]/[Float.min] closures) so the hot sequential sweep
   below can make direct, float-unboxed calls; the closure form
   remains for the pooled path. *)
type objective = Maximize | Minimize

let best_of = function Maximize -> Float.max | Minimize -> Float.min

let expectation (a : _ Arena.t) v k =
  let acc = ref 0.0 in
  for o = a.Arena.out_off.(k) to a.Arena.out_off.(k + 1) - 1 do
    acc := !acc +. (a.Arena.prob_f.(o) *. v.(a.Arena.tgt.(o)))
  done;
  !acc

let state_value (a : _ Arena.t) ~finite ~target ~best v i =
  if target.(i) then 0.0
  else if not finite.(i) then infinity
  else begin
    let lo = a.Arena.step_off.(i) and hi = a.Arena.step_off.(i + 1) in
    if hi = lo then infinity
    else begin
      let candidate k =
        let cost = if a.Arena.tick.(k) then 1.0 else 0.0 in
        cost +. expectation a v k
      in
      let acc = ref (candidate lo) in
      for k = lo + 1 to hi - 1 do
        acc := best !acc (candidate k)
      done;
      !acc
    end
  end

(* The sequential sweep is the hot loop of the [e3] kernel, so it is
   written allocation-free: CSR arrays hoisted into locals, bounds
   checks elided (offsets are trusted by construction), folds carried
   in unboxed float accumulators, and the objective dispatched to
   direct [Float.max]/[Float.min] calls.  The arithmetic -- a left
   fold [acc +. p *. v] per step in branch order, then a left
   [best]-fold over steps seeded with the first candidate -- is the
   exact operation sequence of the historical option-fold code, so
   fixpoints are bit-identical. *)
let value_iterate_seq (a : _ Arena.t) ~finite ~target ~obj ~epsilon
    ~max_sweeps =
  let n = a.Arena.n in
  let step_off = a.Arena.step_off and out_off = a.Arena.out_off in
  let tgt = a.Arena.tgt and prob_f = a.Arena.prob_f in
  let tick = a.Arena.tick in
  let v =
    Array.init n (fun i ->
        if target.(i) then 0.0
        else if finite.(i) then 0.0
        else infinity)
  in
  (* Loop-carried floats live in a scratch float array: float-array
     stores are unboxed (and barrier-free), whereas refs and function
     arguments would box one float per branch.  Slot 0 carries the
     running best over steps, slot 1 the branch-sum of the current
     step, slot 2 the sweep delta.  The seeds ([-inf] for max, [+inf]
     for min) and the inlined comparisons return the same values as
     the historical seeded [Float.max]/[Float.min] folds: the iterates
     are nan-free and never produce [-0.], the only inputs where the
     formulations differ. *)
  let scratch = Array.make 3 0.0 in
  let state i lo hi maximize =
    Array.unsafe_set scratch 0 (if maximize then neg_infinity else infinity);
    for k = lo to hi - 1 do
      Array.unsafe_set scratch 1 0.0;
      for o = Array.unsafe_get out_off k
              to Array.unsafe_get out_off (k + 1) - 1 do
        Array.unsafe_set scratch 1
          (Array.unsafe_get scratch 1
           +. Array.unsafe_get prob_f o
              *. Array.unsafe_get v (Array.unsafe_get tgt o))
      done;
      let e =
        (if Array.unsafe_get tick k then 1.0 else 0.0)
        +. Array.unsafe_get scratch 1
      in
      let cur = Array.unsafe_get scratch 0 in
      Array.unsafe_set scratch 0
        (if maximize then (if e > cur then e else cur)
         else if e < cur then e
         else cur)
    done;
    let fresh = Array.unsafe_get scratch 0 in
    let d = Float.abs (fresh -. Array.unsafe_get v i) in
    if d > Array.unsafe_get scratch 2 then Array.unsafe_set scratch 2 d;
    Array.unsafe_set v i fresh
  in
  let maximize = match obj with Maximize -> true | Minimize -> false in
  let sweep () =
    Array.unsafe_set scratch 2 0.0;
    for i = 0 to n - 1 do
      if (not (Array.unsafe_get target i)) && Array.unsafe_get finite i
      then begin
        let lo = Array.unsafe_get step_off i in
        let hi = Array.unsafe_get step_off (i + 1) in
        if hi > lo then state i lo hi maximize else v.(i) <- infinity
      end
    done;
    Array.unsafe_get scratch 2
  in
  let rec go k =
    Core.Budget.poll ();
    if k > max_sweeps then
      failwith "Expected_time: value iteration did not converge"
    else if sweep () > epsilon then go (k + 1)
  in
  go 0;
  v

(* Pooled variant: double-buffered Jacobi sweeps.  Each state update
   reads only the previous iterate and the per-sweep delta is combined
   with [Float.max] (associative and order-independent), so the result
   is bit-identical for any pool size. *)
let value_iterate_par pool (a : _ Arena.t) ~finite ~target ~best ~epsilon
    ~max_sweeps =
  let n = a.Arena.n in
  let init i =
    if target.(i) then 0.0 else if finite.(i) then 0.0 else infinity
  in
  let stop = Core.Budget.deadline_stop () in
  let cur = ref (Array.init n init) in
  let nxt = ref (Array.make n 0.0) in
  let sweep () =
    let cur = !cur and nxt = !nxt in
    Parallel.Pool.map_reduce pool ?stop ~n ~init:0.0 ~combine:Float.max
      (fun i ->
         if (not target.(i)) && finite.(i)
            && a.Arena.step_off.(i + 1) > a.Arena.step_off.(i)
         then begin
           let fresh = state_value a ~finite ~target ~best cur i in
           nxt.(i) <- fresh;
           Float.abs (fresh -. cur.(i))
         end
         else begin
           nxt.(i) <- init i;
           0.0
         end)
  in
  let rec go k =
    if k > max_sweeps then
      failwith "Expected_time: value iteration did not converge"
    else if sweep () > epsilon then begin
      let t = !cur in
      cur := !nxt;
      nxt := t;
      go (k + 1)
    end
    else cur := !nxt
  in
  go 0;
  !cur

let value_iterate ?pool a ~finite ~target ~obj ~epsilon ~max_sweeps =
  let pool =
    match pool with Some _ -> pool | None -> Parallel.Pool.get_default ()
  in
  match pool with
  | Some p ->
    (try
       value_iterate_par p a ~finite ~target ~best:(best_of obj) ~epsilon
         ~max_sweeps
     with Parallel.Pool.Cancelled reason ->
       raise (Core.Budget.Deadline_exceeded reason))
  | None -> value_iterate_seq a ~finite ~target ~obj ~epsilon ~max_sweeps

let max_expected_ticks ?pool a ~target ?(epsilon = 1e-12)
    ?(max_sweeps = 1_000_000) () =
  let finite = Qualitative.always_reaches a ~target in
  value_iterate ?pool a ~finite ~target ~obj:Maximize ~epsilon ~max_sweeps

let min_expected_ticks ?pool a ~target ?(epsilon = 1e-12)
    ?(max_sweeps = 1_000_000) () =
  let finite = Qualitative.some_reaches_certainly a ~target in
  value_iterate ?pool a ~finite ~target ~obj:Minimize ~epsilon ~max_sweeps

(* Certified two-sided bracket of the max-expected-time iteration: the
   same Gauss-Seidel schedule as [value_iterate_seq], carried on the
   outward-rounded interval plane.  At every sweep
   [vlo.(i) <= (real-arithmetic iterate) <= vhi.(i)], so the returned
   envelope soundly brackets what exact real value iteration would
   have produced at the same stopping point -- a certificate the bare
   float plane cannot give.  The [Maximize] objective keeps all
   successors of finite states finite (always-reach is closed under
   steps), so no infinite endpoints enter the arithmetic. *)
let max_expected_ticks_interval (a : _ Arena.t) ~target
    ?(epsilon = 1e-12) ?(max_sweeps = 1_000_000) () =
  let module I = Proba.Interval in
  let finite = Qualitative.always_reaches a ~target in
  let n = a.Arena.n in
  let plo, phi = Arena.interval_plane a in
  let step_off = a.Arena.step_off and out_off = a.Arena.out_off in
  let tgt = a.Arena.tgt and tick = a.Arena.tick in
  let init i =
    if target.(i) then 0.0 else if finite.(i) then 0.0 else infinity
  in
  let vlo = Array.init n init in
  let vhi = Array.init n init in
  let candidate k =
    let fin = Array.unsafe_get out_off (k + 1) in
    let rec go o l h =
      if o >= fin then (l, h)
      else begin
        let j = Array.unsafe_get tgt o in
        go (o + 1)
          (I.add_down l
             (I.mul_down (Array.unsafe_get plo o) (Array.unsafe_get vlo j)))
          (I.add_up h
             (I.mul_up (Array.unsafe_get phi o) (Array.unsafe_get vhi j)))
      end
    in
    let l, h = go (Array.unsafe_get out_off k) 0.0 0.0 in
    if Array.unsafe_get tick k then (I.add_down 1.0 l, I.add_up 1.0 h)
    else (l, h)
  in
  let state lo hi =
    let rec go k l h =
      if k >= hi then (l, h)
      else begin
        let cl, ch = candidate k in
        go (k + 1) (Float.max l cl) (Float.max h ch)
      end
    in
    let l0, h0 = candidate lo in
    go (lo + 1) l0 h0
  in
  let sweep () =
    let delta = ref 0.0 in
    for i = 0 to n - 1 do
      if (not target.(i)) && finite.(i) then begin
        let lo = step_off.(i) and hi = step_off.(i + 1) in
        if hi > lo then begin
          let l, h = state lo hi in
          let d =
            Float.max
              (Float.abs (l -. vlo.(i)))
              (Float.abs (h -. vhi.(i)))
          in
          if d > !delta then delta := d;
          vlo.(i) <- l;
          vhi.(i) <- h
        end
        else begin
          vlo.(i) <- infinity;
          vhi.(i) <- infinity
        end
      end
    done;
    !delta
  in
  let rec go k =
    Core.Budget.poll ();
    if k > max_sweeps then
      failwith "Expected_time: value iteration did not converge"
    else if sweep () > epsilon then go (k + 1)
  in
  go 0;
  (vlo, vhi)

let max_expected_ticks_with_policy ?pool (a : _ Arena.t) ~target
    ?(epsilon = 1e-12) ?(max_sweeps = 1_000_000) () =
  let finite = Qualitative.always_reaches a ~target in
  let v =
    value_iterate ?pool a ~finite ~target ~obj:Maximize ~epsilon
      ~max_sweeps
  in
  let n = a.Arena.n in
  let policy =
    Array.init n (fun i ->
        if target.(i) || not finite.(i) then -1
        else begin
          let lo = a.Arena.step_off.(i) and hi = a.Arena.step_off.(i + 1) in
          if hi = lo then -1
          else begin
            let best_k = ref 0 and best_v = ref neg_infinity in
            for k = lo to hi - 1 do
              let cost = if a.Arena.tick.(k) then 1.0 else 0.0 in
              let e = cost +. expectation a v k in
              if e > !best_v then begin
                best_v := e;
                best_k := k - lo
              end
            done;
            !best_k
          end
        end)
  in
  (v, policy)
