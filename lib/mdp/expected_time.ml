let expectation v outcomes =
  Array.fold_left
    (fun acc (j, w) -> acc +. (Proba.Rational.to_float w *. v.(j)))
    0.0 outcomes

let state_value expl ~is_tick ~finite ~target ~best v i =
  if target.(i) then 0.0
  else if not finite.(i) then infinity
  else begin
    let steps = Explore.steps expl i in
    if Array.length steps = 0 then infinity
    else
      Array.fold_left
        (fun acc step ->
           let cost = if is_tick step.Explore.action then 1.0 else 0.0 in
           let e = cost +. expectation v step.Explore.outcomes in
           match acc with
           | None -> Some e
           | Some cur -> Some (best cur e))
        None steps
      |> Option.get
  end

let value_iterate_seq expl ~is_tick ~finite ~target ~best ~epsilon
    ~max_sweeps =
  let n = Explore.num_states expl in
  let v =
    Array.init n (fun i ->
        if target.(i) then 0.0
        else if finite.(i) then 0.0
        else infinity)
  in
  let sweep () =
    let delta = ref 0.0 in
    for i = 0 to n - 1 do
      if (not target.(i)) && finite.(i) then begin
        let steps = Explore.steps expl i in
        if Array.length steps > 0 then begin
          let fresh = state_value expl ~is_tick ~finite ~target ~best v i in
          let d = Float.abs (fresh -. v.(i)) in
          if d > !delta then delta := d;
          v.(i) <- fresh
        end
        else v.(i) <- infinity
      end
    done;
    !delta
  in
  let rec go k =
    if k > max_sweeps then
      failwith "Expected_time: value iteration did not converge"
    else if sweep () > epsilon then go (k + 1)
  in
  go 0;
  v

(* Pooled variant: double-buffered Jacobi sweeps.  Each state update
   reads only the previous iterate and the per-sweep delta is combined
   with [Float.max] (associative and order-independent), so the result
   is bit-identical for any pool size. *)
let value_iterate_par pool expl ~is_tick ~finite ~target ~best ~epsilon
    ~max_sweeps =
  let n = Explore.num_states expl in
  let init i =
    if target.(i) then 0.0 else if finite.(i) then 0.0 else infinity
  in
  let cur = ref (Array.init n init) in
  let nxt = ref (Array.make n 0.0) in
  let sweep () =
    let cur = !cur and nxt = !nxt in
    Parallel.Pool.map_reduce pool ~n ~init:0.0 ~combine:Float.max
      (fun i ->
         if (not target.(i)) && finite.(i)
            && Array.length (Explore.steps expl i) > 0
         then begin
           let fresh = state_value expl ~is_tick ~finite ~target ~best cur i in
           nxt.(i) <- fresh;
           Float.abs (fresh -. cur.(i))
         end
         else begin
           nxt.(i) <- init i;
           0.0
         end)
  in
  let rec go k =
    if k > max_sweeps then
      failwith "Expected_time: value iteration did not converge"
    else if sweep () > epsilon then begin
      let t = !cur in
      cur := !nxt;
      nxt := t;
      go (k + 1)
    end
    else cur := !nxt
  in
  go 0;
  !cur

let value_iterate ?pool expl ~is_tick ~finite ~target ~best ~epsilon
    ~max_sweeps =
  let pool =
    match pool with Some _ -> pool | None -> Parallel.Pool.get_default ()
  in
  match pool with
  | Some p ->
    value_iterate_par p expl ~is_tick ~finite ~target ~best ~epsilon
      ~max_sweeps
  | None ->
    value_iterate_seq expl ~is_tick ~finite ~target ~best ~epsilon
      ~max_sweeps

let max_expected_ticks ?pool expl ~is_tick ~target ?(epsilon = 1e-12)
    ?(max_sweeps = 1_000_000) () =
  let finite = Qualitative.always_reaches expl ~target in
  value_iterate ?pool expl ~is_tick ~finite ~target ~best:Float.max ~epsilon
    ~max_sweeps

let min_expected_ticks ?pool expl ~is_tick ~target ?(epsilon = 1e-12)
    ?(max_sweeps = 1_000_000) () =
  let finite = Qualitative.some_reaches_certainly expl ~target in
  value_iterate ?pool expl ~is_tick ~finite ~target ~best:Float.min ~epsilon
    ~max_sweeps

let max_expected_ticks_with_policy ?pool expl ~is_tick ~target
    ?(epsilon = 1e-12) ?(max_sweeps = 1_000_000) () =
  let finite = Qualitative.always_reaches expl ~target in
  let v =
    value_iterate ?pool expl ~is_tick ~finite ~target ~best:Float.max
      ~epsilon ~max_sweeps
  in
  let n = Explore.num_states expl in
  let policy =
    Array.init n (fun i ->
        if target.(i) || not finite.(i) then -1
        else begin
          let steps = Explore.steps expl i in
          if Array.length steps = 0 then -1
          else begin
            let best_k = ref 0 and best_v = ref neg_infinity in
            Array.iteri
              (fun k step ->
                 let cost =
                   if is_tick step.Explore.action then 1.0 else 0.0
                 in
                 let e = cost +. expectation v step.Explore.outcomes in
                 if e > !best_v then begin
                   best_v := e;
                   best_k := k
                 end)
              steps;
            !best_k
          end
        end)
  in
  (v, policy)
