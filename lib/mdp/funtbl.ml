(* Separate-chaining hash table over caller-supplied hash/equal, with
   doubling resize at load factor 2. *)

type ('k, 'v) t = {
  equal : 'k -> 'k -> bool;
  hash : 'k -> int;
  mutable buckets : ('k * 'v) list array;
  mutable size : int;
}

let create ~equal ~hash n =
  let n = Stdlib.max 16 n in
  { equal; hash; buckets = Array.make n []; size = 0 }

let length t = t.size

let bucket_of t k = t.hash k land max_int mod Array.length t.buckets

let find t k =
  let rec go = function
    | [] -> None
    | (k', v) :: rest -> if t.equal k k' then Some v else go rest
  in
  go t.buckets.(bucket_of t k)

let mem t k = find t k <> None

let resize t =
  let old = t.buckets in
  t.buckets <- Array.make (2 * Array.length old) [];
  Array.iter
    (List.iter (fun ((k, _) as binding) ->
         let b = bucket_of t k in
         t.buckets.(b) <- binding :: t.buckets.(b)))
    old

let add t k v =
  let b = bucket_of t k in
  let chain = t.buckets.(b) in
  let existed = List.exists (fun (k', _) -> t.equal k k') chain in
  let chain =
    if existed then List.filter (fun (k', _) -> not (t.equal k k')) chain
    else chain
  in
  t.buckets.(b) <- (k, v) :: chain;
  if not existed then begin
    t.size <- t.size + 1;
    if t.size > 2 * Array.length t.buckets then resize t
  end

let find_or_add t k make =
  let b = bucket_of t k in
  let rec go = function
    | [] ->
      let v = make () in
      t.buckets.(b) <- (k, v) :: t.buckets.(b);
      t.size <- t.size + 1;
      if t.size > 2 * Array.length t.buckets then resize t;
      v
    | (k', v) :: rest -> if t.equal k k' then v else go rest
  in
  go t.buckets.(b)

let iter f t = Array.iter (List.iter (fun (k, v) -> f k v)) t.buckets

let fold f t init =
  Array.fold_left
    (fun acc chain ->
       List.fold_left (fun acc (k, v) -> f k v acc) acc chain)
    init t.buckets
