(** Graphviz (DOT) export of compiled arenas.

    Each state becomes a node; each nondeterministic step becomes a
    small choice point labelled by its action, fanning out to its
    probabilistic outcomes with their weights.  Intended for inspecting
    small instances and for documentation figures. *)

(** [to_channel arena ?name ?max_states ?highlight out] writes the
    compiled MDP in DOT syntax.  States satisfying [highlight] are
    drawn filled.  If the automaton has more than [max_states] states
    (default 500), raises [Invalid_argument] -- large graphs are not
    viewable anyway. *)
val to_channel :
  ('s, 'a) Arena.t -> ?name:string -> ?max_states:int ->
  ?highlight:('s -> bool) -> out_channel -> unit

(** [to_string arena ...] renders to a string. *)
val to_string :
  ('s, 'a) Arena.t -> ?name:string -> ?max_states:int ->
  ?highlight:('s -> bool) -> unit -> string
