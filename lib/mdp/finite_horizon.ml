module Q = Proba.Rational

exception No_convergence of string

(* The backward induction is shared between exact rationals (used for
   certified claims) and floats (used for fast exploration at sizes the
   exact engine cannot reach): the layer algorithm is a functor over
   the value semiring. *)
module type NUM = sig
  type t

  val zero : t
  val one : t
  val of_rational : Q.t -> t
  val add : t -> t -> t
  val scale : t -> t -> t  (* weight * value *)
  val equal : t -> t -> bool
  val min : t -> t -> t
  val max : t -> t -> t
end

module Num_rational : NUM with type t = Q.t = struct
  type t = Q.t

  let zero = Q.zero
  let one = Q.one
  let of_rational q = q
  let add = Q.add
  let scale = Q.mul
  let equal = Q.equal
  let min = Q.min
  let max = Q.max
end

module Num_dyadic : NUM with type t = Proba.Dyadic.t = struct
  type t = Proba.Dyadic.t

  let zero = Proba.Dyadic.zero
  let one = Proba.Dyadic.one
  let of_rational = Proba.Dyadic.of_rational
  let add = Proba.Dyadic.add
  let scale = Proba.Dyadic.mul
  let equal = Proba.Dyadic.equal
  let min = Proba.Dyadic.min
  let max = Proba.Dyadic.max
end

module Num_float : NUM with type t = float = struct
  type t = float

  let zero = 0.0
  let one = 1.0
  let of_rational = Q.to_float
  let add = ( +. )
  let scale = ( *. )
  let equal a b = Float.equal a b
  let min = Float.min
  let max = Float.max
end

module Engine (N : NUM) = struct
  type compact = {
    n : int;
    target : bool array;
    (* per state: per step: (is_tick, outcomes with converted weights) *)
    steps : (bool * (int * N.t) array) array array;
  }

  (* Per-index parallel fill, or a plain loop when no pool is in
     effect.  Writes go to distinct slots, so results never depend on
     the pool size. *)
  let pfor pool ~n f =
    match pool with
    | Some p -> Parallel.Pool.parallel_for p ~n f
    | None ->
      for i = 0 to n - 1 do
        f i
      done

  let compact ?pool expl ~is_tick ~target =
    let n = Explore.num_states expl in
    if Array.length target <> n then
      invalid_arg "Finite_horizon: target array has wrong length";
    let steps = Array.make n [||] in
    pfor pool ~n (fun i ->
        steps.(i) <-
          Array.map
            (fun s ->
               ( is_tick s.Explore.action,
                 Array.map
                   (fun (j, w) -> (j, N.of_rational w))
                   s.Explore.outcomes ))
            (Explore.steps expl i));
    { n; target; steps }

  let expectation v outcomes =
    Array.fold_left
      (fun acc (j, w) -> N.add acc (N.scale w v.(j)))
      N.zero outcomes

  let no_convergence max_sweeps =
    raise
      (No_convergence
         (Printf.sprintf
            "tick layer did not close after %d sweeps: the automaton \
             has probabilistic zero-time cycles" max_sweeps))

  (* One tick layer: given the value vector [v_next] for one tick less
     of budget, compute the fixpoint of
       v(s) = 1                          if target(s)
            | 0                          if no step enabled
            | best over steps:  tick s     -> E_{v_next}
                                non-tick s -> E_v
     iterating Bellman sweeps in place from [init] until unchanged. *)
  let layer_seq c ~best ~init v_next =
    let tick_exp =
      Array.map
        (Array.map (fun (tick, outcomes) ->
             if tick then Some (expectation v_next outcomes) else None))
        c.steps
    in
    let v = Array.init c.n init in
    let sweep () =
      let changed = ref false in
      for s = 0 to c.n - 1 do
        if not c.target.(s) then begin
          let stps = c.steps.(s) in
          if Array.length stps > 0 then begin
            let value = ref None in
            Array.iteri
              (fun k (_tick, outcomes) ->
                 let candidate =
                   match tick_exp.(s).(k) with
                   | Some e -> e
                   | None -> expectation v outcomes
                 in
                 match !value with
                 | None -> value := Some candidate
                 | Some cur -> value := Some (best cur candidate))
              stps;
            match !value with
            | None -> ()
            | Some fresh ->
              if not (N.equal fresh v.(s)) then begin
                v.(s) <- fresh;
                changed := true
              end
          end
        end
      done;
      !changed
    in
    let max_sweeps = c.n + 2 in
    let rec go k =
      if k > max_sweeps then no_convergence max_sweeps
      else if sweep () then go (k + 1)
    in
    go 0;
    v

  (* The pooled layer runs Jacobi sweeps (double-buffered: each sweep
     reads only the previous iterate), so every per-state slot is an
     independent write and the result is bit-identical for any pool
     size -- including 1.  Both schedules are Kleene iterations of the
     same monotone layer operator from the same starting vector, so for
     the exact numeric types they converge to the same fixpoint as the
     sequential in-place schedule; Jacobi needs at most one sweep per
     state on a zero-time chain, which stays within the same
     [n + 2] cap. *)
  let layer_par pool c ~best ~init v_next =
    let tick_exp = Array.make c.n [||] in
    Parallel.Pool.parallel_for pool ~n:c.n (fun s ->
        tick_exp.(s) <-
          Array.map
            (fun (tick, outcomes) ->
               if tick then Some (expectation v_next outcomes) else None)
            c.steps.(s));
    let cur = ref (Array.init c.n init) in
    let nxt = ref (Array.make c.n N.zero) in
    let sweep () =
      let cur = !cur and nxt = !nxt in
      Parallel.Pool.map_reduce pool ~n:c.n ~init:false ~combine:( || )
        (fun s ->
            if c.target.(s) || Array.length c.steps.(s) = 0 then begin
              nxt.(s) <- cur.(s);
              false
            end
            else begin
              let value = ref None in
              Array.iteri
                (fun k (_tick, outcomes) ->
                   let candidate =
                     match tick_exp.(s).(k) with
                     | Some e -> e
                     | None -> expectation cur outcomes
                   in
                   match !value with
                   | None -> value := Some candidate
                   | Some acc -> value := Some (best acc candidate))
                c.steps.(s);
              let fresh = Option.get !value in
              nxt.(s) <- fresh;
              not (N.equal fresh cur.(s))
            end)
    in
    let max_sweeps = c.n + 2 in
    let rec go k =
      if k > max_sweeps then no_convergence max_sweeps
      else if sweep () then begin
        let t = !cur in
        cur := !nxt;
        nxt := t;
        go (k + 1)
      end
    in
    go 0;
    !cur

  let layer pool c ~best ~init v_next =
    match pool with
    | Some p -> layer_par p c ~best ~init v_next
    | None -> layer_seq c ~best ~init v_next

  let min_init c s =
    if c.target.(s) then N.one
    else if Array.length c.steps.(s) = 0 then N.zero
    else N.one

  let max_init c s = if c.target.(s) then N.one else N.zero

  (* An explicit [?pool] wins; otherwise the session default installed
     by [--domains] applies. *)
  let resolve_pool = function
    | Some _ as p -> p
    | None -> Parallel.Pool.get_default ()

  let run ?pool expl ~is_tick ~target ~ticks ~best ~init =
    if ticks < 0 then invalid_arg "Finite_horizon: negative tick horizon";
    let pool = resolve_pool pool in
    let c = compact ?pool expl ~is_tick ~target in
    let v = ref (Array.make c.n N.zero) in
    for _t = 0 to ticks do
      v := layer pool c ~best ~init:(init c) !v
    done;
    !v

  let min_reach ?pool expl ~is_tick ~target ~ticks =
    run ?pool expl ~is_tick ~target ~ticks ~best:N.min ~init:min_init

  let max_reach ?pool expl ~is_tick ~target ~ticks =
    run ?pool expl ~is_tick ~target ~ticks ~best:N.max ~init:max_init

  let argbest c ~best v_next v =
    Array.init c.n (fun s ->
        if c.target.(s) || Array.length c.steps.(s) = 0 then -1
        else begin
          let best_k = ref 0 in
          let best_v = ref None in
          Array.iteri
            (fun k (tick, outcomes) ->
               let candidate =
                 expectation (if tick then v_next else v) outcomes
               in
               match !best_v with
               | None -> best_v := Some candidate; best_k := k
               | Some cur ->
                 if not (N.equal (best cur candidate) cur) then begin
                   best_v := Some candidate;
                   best_k := k
                 end)
            c.steps.(s);
          !best_k
        end)

  let min_reach_with_policy ?pool expl ~is_tick ~target ~ticks =
    if ticks < 0 then invalid_arg "Finite_horizon: negative tick horizon";
    let pool = resolve_pool pool in
    let c = compact ?pool expl ~is_tick ~target in
    let policy = Array.make (ticks + 1) [||] in
    let v = ref (Array.make c.n N.zero) in
    for t = 0 to ticks do
      let fresh = layer pool c ~best:N.min ~init:(min_init c) !v in
      policy.(t) <- argbest c ~best:N.min !v fresh;
      v := fresh
    done;
    (!v, policy)

  (* Step-bounded: every step consumes one unit of horizon, so plain
     backward induction suffices.  Already double-buffered, so the
     parallel fill is bit-identical to the sequential one. *)
  let run_steps ?pool expl ~target ~steps ~best =
    if steps < 0 then invalid_arg "Finite_horizon: negative step horizon";
    let pool = resolve_pool pool in
    let n = Explore.num_states expl in
    if Array.length target <> n then
      invalid_arg "Finite_horizon: target array has wrong length";
    let c = compact ?pool expl ~is_tick:(fun _ -> false) ~target in
    let v =
      ref (Array.init n (fun s -> if target.(s) then N.one else N.zero))
    in
    for _k = 1 to steps do
      let prev = !v in
      let fresh = Array.make n N.zero in
      pfor pool ~n (fun s ->
          fresh.(s) <-
            (if target.(s) then N.one
             else begin
               let stps = c.steps.(s) in
               if Array.length stps = 0 then N.zero
               else
                 Array.fold_left
                   (fun acc (_, outcomes) ->
                      let e = expectation prev outcomes in
                      match acc with
                      | None -> Some e
                      | Some cur -> Some (best cur e))
                   None stps
                 |> Option.get
             end));
      v := fresh
    done;
    !v

  let min_reach_steps ?pool expl ~target ~steps =
    run_steps ?pool expl ~target ~steps ~best:N.min

  let max_reach_steps ?pool expl ~target ~steps =
    run_steps ?pool expl ~target ~steps ~best:N.max
end

module Exact = Engine (Num_rational)
module Exact_dyadic = Engine (Num_dyadic)
module Approx = Engine (Num_float)

(* All shipped case studies only flip fair coins, so their transition
   probabilities are dyadic and the shift-based arithmetic applies; the
   rational engine remains the fallback for automata with arbitrary
   probabilities.  Both are exact, so results are interchangeable. *)
let exact_fast engine_dyadic engine_rational ?pool expl ~is_tick ~target
    ~ticks =
  match
    engine_dyadic ?pool expl ~is_tick ~target ~ticks
  with
  | values -> Array.map Proba.Dyadic.to_rational values
  | exception Proba.Dyadic.Not_dyadic _ ->
    engine_rational ?pool expl ~is_tick ~target ~ticks

let min_reach ?pool expl ~is_tick ~target ~ticks =
  exact_fast Exact_dyadic.min_reach Exact.min_reach ?pool expl ~is_tick
    ~target ~ticks

let max_reach ?pool expl ~is_tick ~target ~ticks =
  exact_fast Exact_dyadic.max_reach Exact.max_reach ?pool expl ~is_tick
    ~target ~ticks
let min_reach_with_policy = Exact.min_reach_with_policy

let min_reach_steps ?pool expl ~target ~steps =
  match Exact_dyadic.min_reach_steps ?pool expl ~target ~steps with
  | values -> Array.map Proba.Dyadic.to_rational values
  | exception Proba.Dyadic.Not_dyadic _ ->
    Exact.min_reach_steps ?pool expl ~target ~steps

let max_reach_steps ?pool expl ~target ~steps =
  match Exact_dyadic.max_reach_steps ?pool expl ~target ~steps with
  | values -> Array.map Proba.Dyadic.to_rational values
  | exception Proba.Dyadic.Not_dyadic _ ->
    Exact.max_reach_steps ?pool expl ~target ~steps

(** The rational-only engine, exposed for cross-checking. *)
let min_reach_rational = Exact.min_reach
let max_reach_rational = Exact.max_reach
let min_reach_float = Approx.min_reach
let max_reach_float = Approx.max_reach
