module Q = Proba.Rational

exception No_convergence of string

let no_convergence max_sweeps =
  raise
    (No_convergence
       (Printf.sprintf
          "tick layer did not close after %d sweeps: the automaton \
           has probabilistic zero-time cycles" max_sweeps))

(* The backward induction is shared between exact rationals (used for
   certified claims) and floats (used for fast exploration at sizes the
   exact engine cannot reach): the layer algorithm is a functor over
   the value semiring.  Each instantiation reads one of the arena's
   probability planes -- the branch order is the arena's, which is the
   exploration order, so results are bit-identical to the historical
   per-engine conversion path. *)
module type NUM = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val scale : t -> t -> t  (* weight * value *)
  val equal : t -> t -> bool
  val min : t -> t -> t
  val max : t -> t -> t
end

module Num_rational : NUM with type t = Q.t = struct
  type t = Q.t

  let zero = Q.zero
  let one = Q.one
  let add = Q.add
  let scale = Q.mul
  let equal = Q.equal
  let min = Q.min
  let max = Q.max
end

module Num_dyadic : NUM with type t = Proba.Dyadic.t = struct
  type t = Proba.Dyadic.t

  let zero = Proba.Dyadic.zero
  let one = Proba.Dyadic.one
  let add = Proba.Dyadic.add
  let scale = Proba.Dyadic.mul
  let equal = Proba.Dyadic.equal
  let min = Proba.Dyadic.min
  let max = Proba.Dyadic.max
end

module Num_float : NUM with type t = float = struct
  type t = float

  let zero = 0.0
  let one = 1.0
  let add = ( +. )
  let scale = ( *. )
  let equal a b = Float.equal a b
  let min = Float.min
  let max = Float.max
end

module Engine (N : NUM) = struct
  (* The compact form is now just the arena's CSR arrays plus the
     caller-selected probability plane: building it is O(1), no
     per-call conversion or copying. *)
  type compact = {
    n : int;
    target : bool array;
    step_off : int array;
    out_off : int array;
    tgt : int array;
    tick : bool array;
    plane : N.t array;
  }

  let compact (a : _ Arena.t) ~plane ~target =
    if Array.length target <> a.Arena.n then
      invalid_arg "Finite_horizon: target array has wrong length";
    { n = a.Arena.n;
      target;
      step_off = a.Arena.step_off;
      out_off = a.Arena.out_off;
      tgt = a.Arena.tgt;
      tick = a.Arena.tick;
      plane }

  (* Per-index parallel fill, or a plain loop when no pool is in
     effect.  Writes go to distinct slots, so results never depend on
     the pool size.  Both paths observe the ambient deadline: the pool
     via a [?stop] probe (consulted before every chunk claim), the
     plain loop via one poll per fill. *)
  let pfor pool ~n f =
    match pool with
    | Some p ->
      (try
         Parallel.Pool.parallel_for p ?stop:(Core.Budget.deadline_stop ())
           ~n f
       with Parallel.Pool.Cancelled reason ->
         raise (Core.Budget.Deadline_exceeded reason))
    | None ->
      Core.Budget.poll ();
      for i = 0 to n - 1 do
        f i
      done

  (* Expectation of step [k] under value vector [v]: a left fold over
     the step's branch range, the same association order as the
     historical per-step outcome arrays. *)
  let expectation c v k =
    let acc = ref N.zero in
    for o = c.out_off.(k) to c.out_off.(k + 1) - 1 do
      acc := N.add !acc (N.scale c.plane.(o) v.(c.tgt.(o)))
    done;
    !acc

  (* Precompute the expectations of tick steps against [v_next]; slots
     for non-tick steps stay [N.zero] and are never read. *)
  let fill_tick_exp c tick_exp v_next lo hi =
    for k = lo to hi - 1 do
      if c.tick.(k) then tick_exp.(k) <- expectation c v_next k
    done

  (* One tick layer: given the value vector [v_next] for one tick less
     of budget, compute the fixpoint of
       v(s) = 1                          if target(s)
            | 0                          if no step enabled
            | best over steps:  tick s     -> E_{v_next}
                                non-tick s -> E_v
     iterating Bellman sweeps in place from [init] until unchanged. *)
  let layer_seq c ~best ~init v_next =
    let num_steps = Array.length c.tick in
    let tick_exp = Array.make num_steps N.zero in
    fill_tick_exp c tick_exp v_next 0 num_steps;
    let v = Array.init c.n init in
    let sweep () =
      let changed = ref false in
      for s = 0 to c.n - 1 do
        if not c.target.(s) then begin
          let lo = c.step_off.(s) and hi = c.step_off.(s + 1) in
          if hi > lo then begin
            (* fold in step order, seeded with the first candidate:
               the same association as the historical option fold,
               minus its per-step allocation *)
            let candidate k =
              if c.tick.(k) then tick_exp.(k) else expectation c v k
            in
            let acc = ref (candidate lo) in
            for k = lo + 1 to hi - 1 do
              acc := best !acc (candidate k)
            done;
            let fresh = !acc in
            if not (N.equal fresh v.(s)) then begin
              v.(s) <- fresh;
              changed := true
            end
          end
        end
      done;
      !changed
    in
    let max_sweeps = c.n + 2 in
    (* Poll per sweep, not per state: a sweep is the natural chunk of a
       sequential layer, so a fired deadline aborts mid-layer instead
       of after the whole backward induction. *)
    let rec go k =
      Core.Budget.poll ();
      if k > max_sweeps then no_convergence max_sweeps
      else if sweep () then go (k + 1)
    in
    go 0;
    v

  (* The pooled layer runs Jacobi sweeps (double-buffered: each sweep
     reads only the previous iterate), so every per-state slot is an
     independent write and the result is bit-identical for any pool
     size -- including 1.  Both schedules are Kleene iterations of the
     same monotone layer operator from the same starting vector, so for
     the exact numeric types they converge to the same fixpoint as the
     sequential in-place schedule; Jacobi needs at most one sweep per
     state on a zero-time chain, which stays within the same
     [n + 2] cap. *)
  let layer_par pool c ~best ~init v_next =
    let stop = Core.Budget.deadline_stop () in
    let tick_exp = Array.make (Array.length c.tick) N.zero in
    Parallel.Pool.parallel_for pool ?stop ~n:c.n (fun s ->
        fill_tick_exp c tick_exp v_next c.step_off.(s) c.step_off.(s + 1));
    let cur = ref (Array.init c.n init) in
    let nxt = ref (Array.make c.n N.zero) in
    let sweep () =
      let cur = !cur and nxt = !nxt in
      Parallel.Pool.map_reduce pool ?stop ~n:c.n ~init:false ~combine:( || )
        (fun s ->
            let lo = c.step_off.(s) and hi = c.step_off.(s + 1) in
            if c.target.(s) || hi = lo then begin
              nxt.(s) <- cur.(s);
              false
            end
            else begin
              let candidate k =
                if c.tick.(k) then tick_exp.(k) else expectation c cur k
              in
              let acc = ref (candidate lo) in
              for k = lo + 1 to hi - 1 do
                acc := best !acc (candidate k)
              done;
              let fresh = !acc in
              nxt.(s) <- fresh;
              not (N.equal fresh cur.(s))
            end)
    in
    let max_sweeps = c.n + 2 in
    let rec go k =
      if k > max_sweeps then no_convergence max_sweeps
      else if sweep () then begin
        let t = !cur in
        cur := !nxt;
        nxt := t;
        go (k + 1)
      end
    in
    go 0;
    !cur

  let layer pool c ~best ~init v_next =
    match pool with
    | Some p ->
      (try layer_par p c ~best ~init v_next
       with Parallel.Pool.Cancelled reason ->
         raise (Core.Budget.Deadline_exceeded reason))
    | None -> layer_seq c ~best ~init v_next

  let min_init c s =
    if c.target.(s) then N.one
    else if c.step_off.(s + 1) = c.step_off.(s) then N.zero
    else N.one

  let max_init c s = if c.target.(s) then N.one else N.zero

  (* An explicit [?pool] wins; otherwise the session default installed
     by [--domains] applies. *)
  let resolve_pool = function
    | Some _ as p -> p
    | None -> Parallel.Pool.get_default ()

  let run ?pool arena ~plane ~target ~ticks ~best ~init =
    if ticks < 0 then invalid_arg "Finite_horizon: negative tick horizon";
    let pool = resolve_pool pool in
    let c = compact arena ~plane ~target in
    let v = ref (Array.make c.n N.zero) in
    for _t = 0 to ticks do
      v := layer pool c ~best ~init:(init c) !v
    done;
    !v

  let min_reach ?pool arena ~plane ~target ~ticks =
    run ?pool arena ~plane ~target ~ticks ~best:N.min ~init:min_init

  let max_reach ?pool arena ~plane ~target ~ticks =
    run ?pool arena ~plane ~target ~ticks ~best:N.max ~init:max_init

  let argbest c ~best v_next v =
    Array.init c.n (fun s ->
        let lo = c.step_off.(s) and hi = c.step_off.(s + 1) in
        if c.target.(s) || hi = lo then -1
        else begin
          let best_k = ref 0 in
          let best_v = ref None in
          for k = lo to hi - 1 do
            let candidate =
              expectation c (if c.tick.(k) then v_next else v) k
            in
            match !best_v with
            | None ->
              best_v := Some candidate;
              best_k := k - lo
            | Some cur ->
              if not (N.equal (best cur candidate) cur) then begin
                best_v := Some candidate;
                best_k := k - lo
              end
          done;
          !best_k
        end)

  let min_reach_with_policy ?pool arena ~plane ~target ~ticks =
    if ticks < 0 then invalid_arg "Finite_horizon: negative tick horizon";
    let pool = resolve_pool pool in
    let c = compact arena ~plane ~target in
    let policy = Array.make (ticks + 1) [||] in
    let v = ref (Array.make c.n N.zero) in
    for t = 0 to ticks do
      let fresh = layer pool c ~best:N.min ~init:(min_init c) !v in
      policy.(t) <- argbest c ~best:N.min !v fresh;
      v := fresh
    done;
    (!v, policy)

  (* Step-bounded: every step consumes one unit of horizon, so plain
     backward induction suffices; the tick mask is ignored.  Already
     double-buffered, so the parallel fill is bit-identical to the
     sequential one. *)
  let run_steps ?pool arena ~plane ~target ~steps ~best =
    if steps < 0 then invalid_arg "Finite_horizon: negative step horizon";
    let pool = resolve_pool pool in
    let c = compact arena ~plane ~target in
    let n = c.n in
    let v =
      ref (Array.init n (fun s -> if target.(s) then N.one else N.zero))
    in
    for _k = 1 to steps do
      let prev = !v in
      let fresh = Array.make n N.zero in
      pfor pool ~n (fun s ->
          fresh.(s) <-
            (if target.(s) then N.one
             else begin
               let lo = c.step_off.(s) and hi = c.step_off.(s + 1) in
               if hi = lo then N.zero
               else begin
                 let acc = ref (expectation c prev lo) in
                 for k = lo + 1 to hi - 1 do
                   acc := best !acc (expectation c prev k)
                 done;
                 !acc
               end
             end));
      v := fresh
    done;
    !v

  let min_reach_steps ?pool arena ~plane ~target ~steps =
    run_steps ?pool arena ~plane ~target ~steps ~best:N.min

  let max_reach_steps ?pool arena ~plane ~target ~steps =
    run_steps ?pool arena ~plane ~target ~steps ~best:N.max
end

module Exact = Engine (Num_rational)
module Exact_dyadic = Engine (Num_dyadic)
module Approx = Engine (Num_float)

(* ------------------------------------------------------------------ *)
(* Interval-guided exact backward induction: the [Plane.Interval] path
   of [min_reach]/[max_reach].

   Each tick layer is solved in two passes:

   1. an outward-rounded interval fixpoint over the arena's interval
      plane -- pure float-pair Gauss-Seidel sweeps at the exact
      engine's schedule, so the interval vector brackets every exact
      in-place iterate and hence the layer fixpoint;
   2. an exact pass restricted to the *residue*: states whose interval
      did not collapse to a point.  A point interval contains exactly
      one real, necessarily the exact layer value, and that real is a
      double, recovered with [Rational.of_float_exact] -- no Bigint
      work.  The residue recursion runs with point states pinned; by
      monotonicity of the layer operator it converges to exactly the
      restriction of the full exact fixpoint (pin any other fixpoint
      of the restricted system and extending it with the pins yields a
      pre-/post-fixpoint squeezing it against the true limit).

   Results are bit-identical to the pure-exact engines: equal values
   of canonical rationals are structurally equal.  If the interval
   fixpoint fails to close within the [n + 2] sweep cap the whole
   layer falls back to the exact engine (counted in [Plane.stats]);
   the residue recursion keeps the same cap and [No_convergence]
   semantics.  In particular a layer that diverges exactly (zero-time
   probabilistic cycle) can never be fully pinned: its strictly
   monotone exact iterates cannot share one point interval, so the
   diverging states stay in the residue and raise as before.

   All interval quantities here are reach probabilities in [0, 1], so
   the directed products need only the nonnegative corner
   ([lo*lo, hi*hi]) and lower endpoints can never round below 0. *)
module Guided = struct
  module I = Proba.Interval

  type kind = Min | Max

  let run kind (a : _ Arena.t) ~target ~ticks =
    if ticks < 0 then invalid_arg "Finite_horizon: negative tick horizon";
    let n = a.Arena.n in
    if Array.length target <> n then
      invalid_arg "Finite_horizon: target array has wrong length";
    let plo, phi = Arena.interval_plane a in
    let step_off = a.Arena.step_off and out_off = a.Arena.out_off in
    let tgt = a.Arena.tgt and tick = a.Arena.tick in
    let prob_q = a.Arena.prob_q in
    let num_steps = Array.length tick in
    let qbest = match kind with Min -> Q.min | Max -> Q.max in
    let init_point s =
      match kind with
      | Min ->
        if target.(s) then 1.0
        else if step_off.(s + 1) = step_off.(s) then 0.0
        else 1.0
      | Max -> if target.(s) then 1.0 else 0.0
    in
    let init_q s =
      match kind with
      | Min ->
        if target.(s) then Q.one
        else if step_off.(s + 1) = step_off.(s) then Q.zero
        else Q.one
      | Max -> if target.(s) then Q.one else Q.zero
    in
    let maximize = match kind with Min -> false | Max -> true in
    (* Loop-carried interval endpoints live in a scratch float array
       (unboxed, barrier-free stores); refs or function returns would
       box one float per branch.  Slots 0/1: the current step's
       outward sums; slots 2/3: the running best over steps. *)
    let scratch = Array.make 4 0.0 in
    (* interval expectation of step [k] against endpoint arrays
       [xlo]/[xhi], left fold in branch order, into slots 0/1 *)
    let exp_iv xlo xhi k =
      Array.unsafe_set scratch 0 0.0;
      Array.unsafe_set scratch 1 0.0;
      for o = Array.unsafe_get out_off k
              to Array.unsafe_get out_off (k + 1) - 1 do
        let j = Array.unsafe_get tgt o in
        Array.unsafe_set scratch 0
          (I.add_down
             (Array.unsafe_get scratch 0)
             (I.mul_down (Array.unsafe_get plo o) (Array.unsafe_get xlo j)));
        Array.unsafe_set scratch 1
          (I.add_up
             (Array.unsafe_get scratch 1)
             (I.mul_up (Array.unsafe_get phi o) (Array.unsafe_get xhi j)))
      done
    in
    (* tick-step expectation memo for the exact residue pass, filled
       lazily: most tick steps never feed a residue state *)
    let tick_q = Array.make num_steps Q.zero in
    let tick_q_done = Array.make num_steps false in
    let max_sweeps = n + 2 in
    (* one tick layer; [vq]/[vlo]/[vhi] hold the previous layer (one
       tick less of budget), results land in [wq]/[wlo]/[whi] *)
    let run_layer ~vq ~vlo ~vhi ~wq ~wlo ~whi =
      (* interval expectations of tick steps against the previous
         layer are loop constants *)
      let telo = Array.make num_steps 0.0 in
      let tehi = Array.make num_steps 0.0 in
      for k = 0 to num_steps - 1 do
        if Array.unsafe_get tick k then begin
          exp_iv vlo vhi k;
          telo.(k) <- Array.unsafe_get scratch 0;
          tehi.(k) <- Array.unsafe_get scratch 1
        end
      done;
      for s = 0 to n - 1 do
        let p = init_point s in
        wlo.(s) <- p;
        whi.(s) <- p
      done;
      (* loads the candidate interval of step [k] into slots 0/1 *)
      let candidate k =
        if Array.unsafe_get tick k then begin
          Array.unsafe_set scratch 0 (Array.unsafe_get telo k);
          Array.unsafe_set scratch 1 (Array.unsafe_get tehi k)
        end
        else exp_iv wlo whi k
      in
      let sweep () =
        let changed = ref false in
        for s = 0 to n - 1 do
          if not (Array.unsafe_get target s) then begin
            let lo = step_off.(s) and hi = step_off.(s + 1) in
            if hi > lo then begin
              candidate lo;
              Array.unsafe_set scratch 2 (Array.unsafe_get scratch 0);
              Array.unsafe_set scratch 3 (Array.unsafe_get scratch 1);
              for k = lo + 1 to hi - 1 do
                candidate k;
                (* inline componentwise best: the endpoints are
                   reach probabilities in [0, 1] (nan-free, no -0.),
                   where this equals Float.min/Float.max *)
                let cl = Array.unsafe_get scratch 0 in
                let cur = Array.unsafe_get scratch 2 in
                Array.unsafe_set scratch 2
                  (if maximize then (if cl > cur then cl else cur)
                   else if cl < cur then cl
                   else cur);
                let ch = Array.unsafe_get scratch 1 in
                let cur = Array.unsafe_get scratch 3 in
                Array.unsafe_set scratch 3
                  (if maximize then (if ch > cur then ch else cur)
                   else if ch < cur then ch
                   else cur)
              done;
              let l = Array.unsafe_get scratch 2 in
              let h = Array.unsafe_get scratch 3 in
              if not (Float.equal l wlo.(s) && Float.equal h whi.(s))
              then begin
                wlo.(s) <- l;
                whi.(s) <- h;
                changed := true
              end
            end
          end
        done;
        !changed
      in
      let closed =
        let rec go k =
          Core.Budget.poll ();
          if k > max_sweeps then false
          else if sweep () then go (k + 1)
          else true
        in
        go 0
      in
      Array.fill tick_q_done 0 num_steps false;
      let exact_tick_exp k =
        if not tick_q_done.(k) then begin
          let acc = ref Q.zero in
          for o = out_off.(k) to out_off.(k + 1) - 1 do
            acc := Q.add !acc (Q.mul prob_q.(o) vq.(tgt.(o)))
          done;
          tick_q.(k) <- !acc;
          tick_q_done.(k) <- true
        end;
        tick_q.(k)
      in
      if not closed then begin
        (* interval fixpoint would not close: redo the layer exactly *)
        Plane.record_fallback ();
        Plane.record_pass ~points:0 ~residue:n;
        let c = Exact.compact a ~plane:prob_q ~target in
        let v = Exact.layer_seq c ~best:qbest ~init:init_q vq in
        Array.blit v 0 wq 0 n;
        for s = 0 to n - 1 do
          let iv = I.of_rational wq.(s) in
          wlo.(s) <- I.lo iv;
          whi.(s) <- I.hi iv
        done
      end
      else begin
        (* pin points, then iterate the residue exactly *)
        let residue = ref [] and npoints = ref 0 in
        for s = n - 1 downto 0 do
          let l = wlo.(s) in
          if Float.equal l whi.(s) then begin
            (* a point equal to the previous layer's point pins the
               same rational: skip the reconversion *)
            (if Float.equal l vlo.(s) && Float.equal l vhi.(s) then
               wq.(s) <- vq.(s)
             else wq.(s) <- Q.of_float_exact l);
            incr npoints
          end
          else begin
            wq.(s) <- init_q s;
            residue := s :: !residue
          end
        done;
        let residue = !residue in
        (match residue with
         | [] -> ()
         | _ :: _ ->
           let expectation_q k =
             let acc = ref Q.zero in
             for o = out_off.(k) to out_off.(k + 1) - 1 do
               acc := Q.add !acc (Q.mul prob_q.(o) wq.(tgt.(o)))
             done;
             !acc
           in
           let sweep_exact () =
             let changed = ref false in
             List.iter
               (fun s ->
                  if not target.(s) then begin
                    let lo = step_off.(s) and hi = step_off.(s + 1) in
                    if hi > lo then begin
                      let candidate k =
                        if tick.(k) then exact_tick_exp k
                        else expectation_q k
                      in
                      let acc = ref (candidate lo) in
                      for k = lo + 1 to hi - 1 do
                        acc := qbest !acc (candidate k)
                      done;
                      if not (Q.equal !acc wq.(s)) then begin
                        wq.(s) <- !acc;
                        changed := true
                      end
                    end
                  end)
               residue;
             !changed
           in
           let rec go k =
             Core.Budget.poll ();
             if k > max_sweeps then no_convergence max_sweeps
             else if sweep_exact () then go (k + 1)
           in
           go 0;
           (* tighten the residue envelopes to their exact values for
              the next layer's interval pass *)
           List.iter
             (fun s ->
                let iv = I.of_rational wq.(s) in
                wlo.(s) <- I.lo iv;
                whi.(s) <- I.hi iv)
             residue);
        Plane.record_pass ~points:!npoints ~residue:(List.length residue)
      end
    in
    let vq = Array.make n Q.zero and wq = Array.make n Q.zero in
    let vlo = Array.make n 0.0 and vhi = Array.make n 0.0 in
    let wlo = Array.make n 0.0 and whi = Array.make n 0.0 in
    let rec loop t ~vq ~vlo ~vhi ~wq ~wlo ~whi =
      if t > ticks then vq
      else begin
        run_layer ~vq ~vlo ~vhi ~wq ~wlo ~whi;
        (* swap buffers: the fresh layer becomes the previous one *)
        loop (t + 1) ~vq:wq ~vlo:wlo ~vhi:whi ~wq:vq ~wlo:vlo ~whi:vhi
      end
    in
    loop 0 ~vq ~vlo ~vhi ~wq ~wlo ~whi
end

(* All shipped case studies only flip fair coins, so their transition
   probabilities are dyadic and the shift-based arithmetic applies; the
   rational engine remains the fallback for automata with arbitrary
   probabilities.  Both are exact, so results are interchangeable.
   [Arena.dyadic_plane] raises before caching when some probability is
   not dyadic, so the fallback triggers exactly as it did when the
   conversion lived inside the engine. *)
let exact_fast engine_dyadic engine_rational ?pool a ~target ~ticks =
  match Arena.dyadic_plane a with
  | plane ->
    Array.map Proba.Dyadic.to_rational
      (engine_dyadic ?pool a ~plane ~target ~ticks)
  | exception Proba.Dyadic.Not_dyadic _ ->
    engine_rational ?pool a ~plane:a.Arena.prob_q ~target ~ticks

(* [?plane] selects the sweeping strategy only; the returned rationals
   are bit-identical either way.  The guided engine is sequential (its
   exact fixpoints are schedule-independent), so [?pool] applies to
   the exact path only. *)
let min_reach ?pool ?plane a ~target ~ticks =
  match Plane.resolve plane with
  | Plane.Interval -> Guided.run Guided.Min a ~target ~ticks
  | Plane.Exact ->
    exact_fast Exact_dyadic.min_reach Exact.min_reach ?pool a ~target ~ticks

let max_reach ?pool ?plane a ~target ~ticks =
  match Plane.resolve plane with
  | Plane.Interval -> Guided.run Guided.Max a ~target ~ticks
  | Plane.Exact ->
    exact_fast Exact_dyadic.max_reach Exact.max_reach ?pool a ~target ~ticks

let min_reach_with_policy ?pool (a : _ Arena.t) ~target ~ticks =
  Exact.min_reach_with_policy ?pool a ~plane:a.Arena.prob_q ~target ~ticks

let min_reach_steps ?pool (a : _ Arena.t) ~target ~steps =
  match Arena.dyadic_plane a with
  | plane ->
    Array.map Proba.Dyadic.to_rational
      (Exact_dyadic.min_reach_steps ?pool a ~plane ~target ~steps)
  | exception Proba.Dyadic.Not_dyadic _ ->
    Exact.min_reach_steps ?pool a ~plane:a.Arena.prob_q ~target ~steps

let max_reach_steps ?pool (a : _ Arena.t) ~target ~steps =
  match Arena.dyadic_plane a with
  | plane ->
    Array.map Proba.Dyadic.to_rational
      (Exact_dyadic.max_reach_steps ?pool a ~plane ~target ~steps)
  | exception Proba.Dyadic.Not_dyadic _ ->
    Exact.max_reach_steps ?pool a ~plane:a.Arena.prob_q ~target ~steps

(* The rational-only engine, exposed for cross-checking. *)
let min_reach_rational ?pool (a : _ Arena.t) ~target ~ticks =
  Exact.min_reach ?pool a ~plane:a.Arena.prob_q ~target ~ticks

let max_reach_rational ?pool (a : _ Arena.t) ~target ~ticks =
  Exact.max_reach ?pool a ~plane:a.Arena.prob_q ~target ~ticks

let min_reach_float ?pool (a : _ Arena.t) ~target ~ticks =
  Approx.min_reach ?pool a ~plane:a.Arena.prob_f ~target ~ticks

let max_reach_float ?pool (a : _ Arena.t) ~target ~ticks =
  Approx.max_reach ?pool a ~plane:a.Arena.prob_f ~target ~ticks
