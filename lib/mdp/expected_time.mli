(** Expected time to reach a target, extremized over adversaries.

    Computes [sup] (or [inf]) over adversaries of the expected number of
    ticks before the target is first visited, by floating-point value
    iteration over the arena's float plane (this quantity is a
    {e measurement} used to compare against the paper's derived bound
    of 63, not a certified claim, so floats are appropriate; the
    certified path goes through {!Finite_horizon} and
    {!Core.Expected}).

    States from which some adversary avoids the target with positive
    probability have unbounded worst-case expected time; they are
    detected with {!Qualitative.always_reaches} and reported as
    [infinity].

    Tick costs come from the arena's precomputed tick mask; the float
    plane is the same [Rational.to_float] image the historical code
    computed per access, so the fixpoints are bit-identical.

    With [?pool] (or the session default installed by [--domains]) the
    sweeps run as double-buffered Jacobi iterations across the pool's
    domains; results are bit-identical for any number of domains, but
    may differ in low-order bits from the sequential in-place schedule
    used when no pool is set. *)

(** [max_expected_ticks arena ~target ()] returns per-state worst-case
    expected ticks-to-target ([infinity] where some adversary avoids
    the target).  Iterates until the largest update falls below
    [epsilon] (default [1e-12]) or [max_sweeps] (default [1_000_000]) is
    hit, whichever is first; raises [Failure] when the sweep budget runs
    out. *)
val max_expected_ticks :
  ?pool:Parallel.Pool.t ->
  ('s, 'a) Arena.t -> target:bool array ->
  ?epsilon:float -> ?max_sweeps:int -> unit -> float array

(** Best-case (minimizing adversary) expected ticks; [infinity] where
    even the best adversary cannot reach the target almost surely
    (detected by a max-probability qualitative check). *)
val min_expected_ticks :
  ?pool:Parallel.Pool.t ->
  ('s, 'a) Arena.t -> target:bool array ->
  ?epsilon:float -> ?max_sweeps:int -> unit -> float array

(** Certified two-sided bracket of {!max_expected_ticks}: the same
    Gauss-Seidel sweep schedule carried on the outward-rounded
    {!Proba.Interval} plane, returning [(lo, hi)] endpoint arrays with
    [lo.(i) <= v <= hi.(i)] for the exact real-arithmetic iterate [v]
    at every sweep -- a soundness envelope the bare float plane cannot
    provide.  Stops on the same [epsilon]/[max_sweeps] rule applied to
    the largest endpoint movement.  Sequential only (the bracket is a
    certificate of the sequential schedule). *)
val max_expected_ticks_interval :
  ('s, 'a) Arena.t -> target:bool array ->
  ?epsilon:float -> ?max_sweeps:int -> unit -> float array * float array

(** Like {!max_expected_ticks}, additionally extracting a memoryless
    worst-case adversary: [policy.(s)] is the index of the step the
    maximizing adversary takes at state [s] ([-1] at target, terminal,
    or non-surely-reaching states).  For expected total cost,
    memoryless adversaries attain the extremum, so the extracted policy
    can be replayed by the simulator to cross-validate the value
    iteration (experiment E8). *)
val max_expected_ticks_with_policy :
  ?pool:Parallel.Pool.t ->
  ('s, 'a) Arena.t -> target:bool array ->
  ?epsilon:float -> ?max_sweeps:int -> unit -> float array * int array
