module Q = Proba.Rational

(* A step signature: its (collapsed) action key together with the
   probability it assigns to each block, in canonical order.  Reads
   the arena's CSR rows and exact plane. *)
type signature = (string * (int * Q.t) list) list

let step_signature ~action_key blocks (a : _ Arena.t) k =
  let tally = Hashtbl.create 8 in
  for o = a.Arena.out_off.(k) to a.Arena.out_off.(k + 1) - 1 do
    let b = blocks.(a.Arena.tgt.(o)) in
    let cur = try Hashtbl.find tally b with Not_found -> Q.zero in
    Hashtbl.replace tally b (Q.add cur a.Arena.prob_q.(o))
  done;
  let entries = Hashtbl.fold (fun b w acc -> (b, w) :: acc) tally [] in
  ( action_key a.Arena.actions.(k),
    List.sort (fun (a, _) (b, _) -> compare a b) entries )

let state_signature ~action_key blocks (a : _ Arena.t) i : signature =
  let sigs = ref [] in
  for k = a.Arena.step_off.(i + 1) - 1 downto a.Arena.step_off.(i) do
    sigs := step_signature ~action_key blocks a k :: !sigs
  done;
  List.sort_uniq compare !sigs

(* Unified weight keys for the interval-guided refinement.  Every
   weight that is exactly representable as a double is encoded as
   [P f] -- both by the point fast path (whose per-block sums are
   doubles by construction) and by the exact fallback (which checks
   representability with the directed conversions) -- while the rest
   carry their exact rational as [E q].  Key equality therefore
   coincides with exact weight equality no matter which path computed
   the weight, so the partition trajectory is identical to the
   pure-exact refinement. *)
type wkey = P of float | E of Q.t

let refine (a : _ Arena.t) ~labels
    ?(action_key = fun x -> Marshal.to_string x []) ?plane () =
  let n = a.Arena.n in
  if Array.length labels <> n then
    invalid_arg "Bisim.refine: labels array has wrong length";
  let mode = Plane.resolve plane in
  let step_off = a.Arena.step_off and out_off = a.Arena.out_off in
  let tgt = a.Arena.tgt and prob_q = a.Arena.prob_q in
  (* Action keys are block-independent: collapse each step's action
     once instead of re-marshalling it every round (the historical
     code paid one [Marshal.to_string] per step per round). *)
  let skey = Array.map action_key a.Arena.actions in
  let exact_step_sig blocks k =
    let tally = Hashtbl.create 8 in
    for o = out_off.(k) to out_off.(k + 1) - 1 do
      let b = blocks.(tgt.(o)) in
      let cur = try Hashtbl.find tally b with Not_found -> Q.zero in
      Hashtbl.replace tally b (Q.add cur prob_q.(o))
    done;
    let entries = Hashtbl.fold (fun b w acc -> (b, w) :: acc) tally [] in
    (skey.(k), List.sort (fun (x, _) (y, _) -> compare x y) entries)
  in
  (* The legacy state signature (exact plane, memoized action keys). *)
  let state_key_exact blocks i =
    let sigs = ref [] in
    for k = step_off.(i + 1) - 1 downto step_off.(i) do
      sigs := exact_step_sig blocks k :: !sigs
    done;
    List.sort_uniq compare !sigs
  in
  (* Interval-guided state signature.  Per-block weight sums run on
     the interval plane's endpoint arrays, accumulated in branch
     order.  When every per-step sum collapses to a point the whole
     signature is made of [P] keys with no exact arithmetic at all --
     on dyadic models that is every state after warm-up.  Any widened
     sum sends the state down the exact path, whose weights embed into
     the same key space via the directed conversions. *)
  let plo, phi =
    match mode with
    | Plane.Interval -> Arena.interval_plane a
    | Plane.Exact -> ([||], [||])
  in
  let wkey_of_q q =
    let f = Q.to_float_down q in
    (* [+. 0.0] normalizes -0. to 0.: [Hashtbl.hash] distinguishes the
       zero bit patterns even though [compare] does not *)
    if Float.equal f (Q.to_float_up q) then P (f +. 0.0) else E q
  in
  let exception Widened in
  let tally_step blocks k =
    (* small assoc list in first-encounter order; each branch's
       endpoints are folded into its block's running outward sums *)
    let rec bump acc b l h =
      match acc with
      | [] -> [ (b, l, h) ]
      | (b', l', h') :: tl when b' = b ->
        (b', Proba.Interval.add_down l' l, Proba.Interval.add_up h' h)
        :: tl
      | hd :: tl -> hd :: bump tl b l h
    in
    let entries = ref [] in
    for o = out_off.(k) to out_off.(k + 1) - 1 do
      entries :=
        bump !entries blocks.(Array.unsafe_get tgt o)
          (Array.unsafe_get plo o) (Array.unsafe_get phi o)
    done;
    List.sort (fun (x, _, _) (y, _, _) -> compare x y) !entries
  in
  let points = ref 0 and residue = ref 0 in
  let state_key_interval blocks i =
    try
      let sigs = ref [] in
      for k = step_off.(i + 1) - 1 downto step_off.(i) do
        let entries =
          List.map
            (fun (b, l, h) ->
               if Float.equal l h then (b, P (l +. 0.0)) else raise Widened)
            (tally_step blocks k)
        in
        sigs := (skey.(k), entries) :: !sigs
      done;
      incr points;
      List.sort_uniq compare !sigs
    with Widened ->
      incr residue;
      let sigs = ref [] in
      for k = step_off.(i + 1) - 1 downto step_off.(i) do
        let key, entries = exact_step_sig blocks k in
        sigs :=
          (key, List.map (fun (b, q) -> (b, wkey_of_q q)) entries)
          :: !sigs
      done;
      List.sort_uniq compare !sigs
  in
  (* Current partition as block ids; refine until stable.  [round] is
     polymorphic in the signature type: the exact mode groups by the
     legacy rational signatures, the interval mode by unified keys --
     equal keys mean equal exact signatures either way, so both modes
     walk the same partition trajectory with the same first-encounter
     block numbering. *)
  let blocks = Array.copy labels in
  let stable = ref false in
  let round state_key =
    Core.Budget.poll ();
    let keys = Hashtbl.create (2 * n) in
    let fresh = ref 0 in
    let next = Array.make n 0 in
    for i = 0 to n - 1 do
      let key = (blocks.(i), state_key blocks i) in
      let b =
        match Hashtbl.find_opt keys key with
        | Some b -> b
        | None ->
          let b = !fresh in
          incr fresh;
          Hashtbl.add keys key b;
          b
      in
      next.(i) <- b
    done;
    stable := Array.for_all2 ( = ) blocks next;
    Array.blit next 0 blocks 0 n
  in
  while not !stable do
    match mode with
    | Plane.Interval -> round state_key_interval
    | Plane.Exact -> round state_key_exact
  done;
  (match mode with
   | Plane.Interval -> Plane.record_pass ~points:!points ~residue:!residue
   | Plane.Exact -> ());
  blocks

let num_blocks partition =
  let seen = Hashtbl.create 64 in
  Array.iter (fun b -> Hashtbl.replace seen b ()) partition;
  Hashtbl.length seen

let quotient (a : _ Arena.t) partition
    ?(action_key = fun x -> Marshal.to_string x []) () =
  let n = a.Arena.n in
  if Array.length partition <> n then
    invalid_arg "Bisim.quotient: partition array has wrong length";
  (* One representative per block. *)
  let rep = Hashtbl.create 64 in
  for i = n - 1 downto 0 do
    Hashtbl.replace rep partition.(i) i
  done;
  let enabled b =
    match Hashtbl.find_opt rep b with
    | None -> []
    | Some i ->
      let sigs = state_signature ~action_key partition a i in
      List.map
        (fun (key, entries) ->
           { Core.Pa.action = key; dist = Proba.Dist.make entries })
        sigs
  in
  let start =
    match Arena.start_indices a with
    | i :: _ -> partition.(i)
    | [] -> invalid_arg "Bisim.quotient: no start states"
  in
  Core.Pa.make
    ~pp_state:(fun fmt b -> Format.fprintf fmt "B%d" b)
    ~pp_action:Format.pp_print_string
    ~start:[ start ] ~enabled ()
