module Q = Proba.Rational

(* A step signature: its (collapsed) action key together with the
   probability it assigns to each block, in canonical order.  Reads
   the arena's CSR rows and exact plane. *)
type signature = (string * (int * Q.t) list) list

let step_signature ~action_key blocks (a : _ Arena.t) k =
  let tally = Hashtbl.create 8 in
  for o = a.Arena.out_off.(k) to a.Arena.out_off.(k + 1) - 1 do
    let b = blocks.(a.Arena.tgt.(o)) in
    let cur = try Hashtbl.find tally b with Not_found -> Q.zero in
    Hashtbl.replace tally b (Q.add cur a.Arena.prob_q.(o))
  done;
  let entries = Hashtbl.fold (fun b w acc -> (b, w) :: acc) tally [] in
  ( action_key a.Arena.actions.(k),
    List.sort (fun (a, _) (b, _) -> compare a b) entries )

let state_signature ~action_key blocks (a : _ Arena.t) i : signature =
  let sigs = ref [] in
  for k = a.Arena.step_off.(i + 1) - 1 downto a.Arena.step_off.(i) do
    sigs := step_signature ~action_key blocks a k :: !sigs
  done;
  List.sort_uniq compare !sigs

let refine (a : _ Arena.t) ~labels
    ?(action_key = fun x -> Marshal.to_string x []) () =
  let n = a.Arena.n in
  if Array.length labels <> n then
    invalid_arg "Bisim.refine: labels array has wrong length";
  (* Current partition as block ids; refine until stable. *)
  let blocks = Array.copy labels in
  let stable = ref false in
  while not !stable do
    Core.Budget.poll ();
    let keys = Hashtbl.create (2 * n) in
    let fresh = ref 0 in
    let next = Array.make n 0 in
    for i = 0 to n - 1 do
      let key = (blocks.(i), state_signature ~action_key blocks a i) in
      let b =
        match Hashtbl.find_opt keys key with
        | Some b -> b
        | None ->
          let b = !fresh in
          incr fresh;
          Hashtbl.add keys key b;
          b
      in
      next.(i) <- b
    done;
    stable := Array.for_all2 ( = ) blocks next;
    Array.blit next 0 blocks 0 n
  done;
  blocks

let num_blocks partition =
  let seen = Hashtbl.create 64 in
  Array.iter (fun b -> Hashtbl.replace seen b ()) partition;
  Hashtbl.length seen

let quotient (a : _ Arena.t) partition
    ?(action_key = fun x -> Marshal.to_string x []) () =
  let n = a.Arena.n in
  if Array.length partition <> n then
    invalid_arg "Bisim.quotient: partition array has wrong length";
  (* One representative per block. *)
  let rep = Hashtbl.create 64 in
  for i = n - 1 downto 0 do
    Hashtbl.replace rep partition.(i) i
  done;
  let enabled b =
    match Hashtbl.find_opt rep b with
    | None -> []
    | Some i ->
      let sigs = state_signature ~action_key partition a i in
      List.map
        (fun (key, entries) ->
           { Core.Pa.action = key; dist = Proba.Dist.make entries })
        sigs
  in
  let start =
    match Arena.start_indices a with
    | i :: _ -> partition.(i)
    | [] -> invalid_arg "Bisim.quotient: no start states"
  in
  Core.Pa.make
    ~pp_state:(fun fmt b -> Format.fprintf fmt "B%d" b)
    ~pp_action:Format.pp_print_string
    ~start:[ start ] ~enabled ()
