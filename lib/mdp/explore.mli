(** Explicit-state exploration of a probabilistic automaton.

    Breadth-first enumeration of the reachable states, producing a
    compact indexed representation of the underlying MDP: the
    nondeterministic choices at each state become the MDP's actions and
    the probabilistic branches its transition distributions.  All
    downstream analyses (finite-horizon backward induction, expected
    time, qualitative reachability) work on this representation. *)

exception Too_many_states of int

(** One explored step: the original action, and the outcome distribution
    as pairs of (state index, probability). *)
type 'a step = { action : 'a; outcomes : (int * Proba.Rational.t) array }

type ('s, 'a) t

(** [run ?max_states m] explores [m] from its start states.
    Raises {!Too_many_states} when the bound (default [5_000_000]) is
    exceeded -- prefer {!run_budgeted}, which keeps the partial work.

    [canon] (default identity) is applied to every state before
    interning, so the exploration builds the quotient of [m] under the
    kernel of [canon]: pass an orbit canonicalizer (certified by
    [Analysis.Symmetry]) and the result is the orbit-reduced MDP,
    indistinguishable to downstream consumers from an ordinary
    fragment.  Soundness (that the quotient's verdicts match the full
    automaton's) is the {e caller's} obligation; uncertified canon
    functions yield garbage quietly.  {!index} canonicalizes its
    argument, so looking up any orbit member finds the
    representative. *)
val run : ?max_states:int -> ?canon:('s -> 's) -> ('s, 'a) Core.Pa.t -> ('s, 'a) t

(** A possibly-incomplete exploration.  When the budget ran out,
    [fragment] still holds every interned state; the [frontier] states
    (the index suffix, see {!is_expanded}) were discovered but not
    expanded and report no steps.  Downstream backward inductions treat
    them as stuck, which {e under}-approximates reachability -- so a
    min-reach value computed on the fragment is a sound lower bound for
    the full automaton, though claims must not be certified from it
    (pre-states beyond the frontier were never examined). *)
type ('s, 'a) partial = {
  fragment : ('s, 'a) t;
  complete : bool;
  frontier : int;  (** number of interned-but-unexpanded states *)
  stopped : string option;  (** which budget dimension ran out *)
}

(** [run_budgeted ?budget ?clock m] explores within [budget], never
    raising on exhaustion.  Pass [clock] to share one allowance across
    phases (e.g. exploration, then a Monte Carlo fallback); otherwise a
    fresh clock is started.  The state bound is checked before each
    expansion, so the interned count can overshoot it by the branching
    of the last expanded state. *)
val run_budgeted :
  ?budget:Core.Budget.t -> ?clock:Core.Budget.clock -> ?canon:('s -> 's) ->
  ('s, 'a) Core.Pa.t -> ('s, 'a) partial

(** [of_parts ~pa ~states ~steps ~start_indices ~expanded ()] rebuilds a
    fragment from previously-explored parts (an arena snapshot) without
    re-running the BFS: the intern table is reconstructed from [states]
    in index order and {!explorations} is {e not} incremented.  [canon]
    must be the same canonicalizer the original exploration used (or
    omitted when it was the identity); as with {!run}, passing a
    different one silently changes which states {!index} resolves.
    Raises [Invalid_argument] when array lengths or index ranges are
    inconsistent. *)
val of_parts :
  ?canon:('s -> 's) ->
  pa:('s, 'a) Core.Pa.t ->
  states:'s array ->
  steps:'a step array array ->
  start_indices:int list ->
  expanded:int ->
  unit ->
  ('s, 'a) t

(** The automaton that was explored. *)
val automaton : ('s, 'a) t -> ('s, 'a) Core.Pa.t

val num_states : ('s, 'a) t -> int

(** States whose steps were computed; the frontier of an incomplete
    fragment is the index range [num_expanded .. num_states - 1]. *)
val num_expanded : ('s, 'a) t -> int

val is_expanded : ('s, 'a) t -> int -> bool

(** [true] iff every interned state was expanded ({!run} results
    always are). *)
val is_complete : ('s, 'a) t -> bool

(** Total number of (state, step) pairs. *)
val num_choices : ('s, 'a) t -> int

(** Total number of probabilistic branches. *)
val num_branches : ('s, 'a) t -> int

(** [state expl i] is the state with index [i]. *)
val state : ('s, 'a) t -> int -> 's

(** [index expl s] is the index of an explored state; on a
    canon-reduced fragment, the index of [s]'s orbit representative. *)
val index : ('s, 'a) t -> 's -> int option

(** Indices of the start states. *)
val start_indices : ('s, 'a) t -> int list

(** [steps expl i] are the enabled steps of state [i]. *)
val steps : ('s, 'a) t -> int -> 'a step array

(** [states_where expl pred] lists the indices satisfying a predicate. *)
val states_where : ('s, 'a) t -> ('s -> bool) -> int list

(** [indicator expl pred] is the predicate as a boolean array. *)
val indicator : ('s, 'a) t -> 's Core.Pred.t -> bool array

(** [check_invariant expl pred] returns the first violating state, if
    any.  Used for exhaustive invariant checking (Lemma 6.1). *)
val check_invariant : ('s, 'a) t -> ('s -> bool) -> 's option

(** Process-wide count of explorations performed ({!run} and
    {!run_budgeted} both count).  Read by [Models.stats] so surfaces
    can assert that the registry cache collapses repeated model uses
    into a single exploration. *)
val explorations : unit -> int
