(* All four fixpoints below walk the arena's CSR rows directly:
   [step_off] gives each state's step range, [out_off] each step's
   branch range, and [tgt] the branch targets.  Probabilities are
   irrelevant here (only support membership matters), so neither plane
   is read. *)

(* Does step [k] keep all its mass inside [s]? *)
let step_stays_in (a : _ Arena.t) s k =
  let rec go o =
    o >= a.Arena.out_off.(k + 1)
    || (s.(a.Arena.tgt.(o)) && go (o + 1))
  in
  go a.Arena.out_off.(k)

(* Does step [k] put positive mass on [s]? *)
let step_touches (a : _ Arena.t) s k =
  let rec go o =
    o < a.Arena.out_off.(k + 1)
    && (s.(a.Arena.tgt.(o)) || go (o + 1))
  in
  go a.Arena.out_off.(k)

let exists_step (a : _ Arena.t) i p =
  let rec go k = k < a.Arena.step_off.(i + 1) && (p k || go (k + 1)) in
  go a.Arena.step_off.(i)

let safe_core (a : _ Arena.t) ~avoid =
  let n = a.Arena.n in
  if Array.length avoid <> n then
    invalid_arg "Qualitative: avoid array has wrong length";
  let s = Array.copy avoid in
  (* Greatest fixpoint: repeatedly drop states with no step staying
     surely inside [s] (terminal states stay). *)
  let changed = ref true in
  while !changed do
    Core.Budget.poll ();
    changed := false;
    for i = 0 to n - 1 do
      if s.(i) then begin
        let ok =
          a.Arena.step_off.(i + 1) = a.Arena.step_off.(i)
          || exists_step a i (fun k -> step_stays_in a s k)
        in
        if not ok then begin
          s.(i) <- false;
          changed := true
        end
      end
    done
  done;
  s

let can_avoid (a : _ Arena.t) ~target =
  let n = a.Arena.n in
  if Array.length target <> n then
    invalid_arg "Qualitative: target array has wrong length";
  let avoid = Array.map not target in
  let core = safe_core a ~avoid in
  (* Least fixpoint: states (outside the target) from which some step
     has a positive-probability outcome already in the bad region. *)
  let bad = Array.copy core in
  let changed = ref true in
  while !changed do
    Core.Budget.poll ();
    changed := false;
    for i = 0 to n - 1 do
      if (not bad.(i)) && avoid.(i) then begin
        if exists_step a i (fun k -> step_touches a bad k) then begin
          bad.(i) <- true;
          changed := true
        end
      end
    done
  done;
  bad

let always_reaches a ~target = Array.map not (can_avoid a ~target)

let some_reaches_certainly (a : _ Arena.t) ~target =
  let n = a.Arena.n in
  if Array.length target <> n then
    invalid_arg "Qualitative: target array has wrong length";
  (* Nested fixpoint (Prob1E): outer gfp on the candidate set [s_set],
     inner lfp growing from the target through steps that stay inside
     the candidate set and touch the already-grown region. *)
  let s_set = Array.make n true in
  let outer_changed = ref true in
  while !outer_changed do
    let r = Array.copy target in
    let inner_changed = ref true in
    while !inner_changed do
      Core.Budget.poll ();
      inner_changed := false;
      for i = 0 to n - 1 do
        if (not r.(i)) && s_set.(i) then begin
          let good k = step_stays_in a s_set k && step_touches a r k in
          if exists_step a i good then begin
            r.(i) <- true;
            inner_changed := true
          end
        end
      done
    done;
    outer_changed := not (Array.for_all2 ( = ) s_set r);
    Array.blit r 0 s_set 0 n
  done;
  s_set
