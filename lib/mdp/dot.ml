let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write (a : _ Arena.t) ?(name = "mdp") ?(max_states = 500)
    ?(highlight = fun _ -> false) buf =
  let n = a.Arena.n in
  if n > max_states then
    invalid_arg
      (Printf.sprintf "Dot: %d states exceed the %d-state limit" n
         max_states);
  let pa = Arena.automaton a in
  let state_label i =
    escape (Format.asprintf "%a" (Core.Pa.pp_state pa) (Arena.state a i))
  in
  let action_label k =
    escape
      (Format.asprintf "%a" (Core.Pa.pp_action pa) a.Arena.actions.(k))
  in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=LR;\n  node [fontsize=10];\n";
  for i = 0 to n - 1 do
    let extra =
      if highlight (Arena.state a i) then
        ", style=filled, fillcolor=lightgray"
      else ""
    in
    Buffer.add_string buf
      (Printf.sprintf "  s%d [label=\"%s\", shape=box%s];\n" i
         (state_label i) extra)
  done;
  for i = 0 to n - 1 do
    for k = a.Arena.step_off.(i) to a.Arena.step_off.(i + 1) - 1 do
      let lo = a.Arena.out_off.(k) and hi = a.Arena.out_off.(k + 1) in
      if hi - lo = 1 then
        (* Dirac steps go straight to the target. *)
        Buffer.add_string buf
          (Printf.sprintf "  s%d -> s%d [label=\"%s\"];\n" i
             a.Arena.tgt.(lo) (action_label k))
      else begin
        (* The choice point keeps the historical [c<state>_<local step>]
           id so emitted graphs are textually unchanged. *)
        let choice = Printf.sprintf "c%d_%d" i (k - a.Arena.step_off.(i)) in
        Buffer.add_string buf
          (Printf.sprintf
             "  %s [label=\"%s\", shape=point];\n  s%d -> %s \
              [arrowhead=none];\n"
             choice (action_label k) i choice);
        for o = lo to hi - 1 do
          Buffer.add_string buf
            (Printf.sprintf "  %s -> s%d [label=\"%s\"];\n" choice
               a.Arena.tgt.(o)
               (escape (Proba.Rational.to_string a.Arena.prob_q.(o))))
        done
      end
    done
  done;
  Buffer.add_string buf "}\n"

let to_string a ?name ?max_states ?highlight () =
  let buf = Buffer.create 4096 in
  write a ?name ?max_states ?highlight buf;
  Buffer.contents buf

let to_channel a ?name ?max_states ?highlight out =
  output_string out (to_string a ?name ?max_states ?highlight ())
