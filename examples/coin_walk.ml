(* Third case study: a shared-coin random walk, and an honest look at
   when the paper's composition method is loose.

   Run with:  dune exec examples/coin_walk.exe [-- N BOUND]

   n processes add fair ±1 coin flips to a shared counter; deciding
   when it hits ±bound.  The Unit-Time discipline forces at least n
   flips per time unit.  The paper's ladder method proves

       any state  -bound->_{2^-bound}  decided

   which is valid under every adversary -- but the walk's exit time is
   really bound^2 flips in expectation no matter how the adversary
   schedules, i.e. about bound^2/n time units.  Exact model checking
   recovers that sharp law; the composed bound is exponentially shy of
   it.  Knowing which regime an algorithm is in is part of using the
   method well. *)

module Q = Proba.Rational
module SC = Shared_coin

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2 in
  let bound =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4
  in
  Printf.printf "== shared coin: n = %d processes, barrier = ±%d ==\n\n" n
    bound;
  let inst = SC.Proof.build ~n ~bound () in
  Printf.printf "reachable states: %d\n\n"
    (Mdp.Explore.num_states inst.SC.Proof.expl);

  print_endline "the ladder (each rung exhaustively checked):";
  List.iter
    (fun a ->
       Format.printf "  %-4s attained %-8s (%s)@." a.SC.Proof.label
         (Q.to_string a.SC.Proof.attained)
         (match a.SC.Proof.claim with Some _ -> "holds" | None -> "FAILS"))
    (SC.Proof.arrows inst);

  (match SC.Proof.composed inst with
   | Error e -> Printf.printf "composition failed: %s\n" e
   | Ok claim ->
     Format.printf "@.composed:     %a@." Core.Claim.pp claim;
     Format.printf "direct check:  min P[decided within %d] = %s@." bound
       (Q.to_string (SC.Proof.direct_bound inst)));

  Printf.printf "\nexpected decision time:\n";
  Printf.printf "  exact worst case (value iteration): %.3f units\n"
    (SC.Proof.expected_exact inst);
  Printf.printf "  classical law bound^2/n:            %.3f units\n"
    (SC.Proof.expected_theory inst);
  Printf.printf "  liveness (decides a.s.):            %b\n"
    (SC.Proof.liveness_holds inst);

  (* The adversary cannot bias the outcome, only the speed. *)
  let arena = inst.SC.Proof.arena in
  let plus = Core.Pred.make "+" (fun s -> s.SC.Automaton.counter >= bound) in
  let target = Mdp.Arena.indicator arena plus in
  let horizon = 20 * bound * bound in
  let vmin =
    Mdp.Finite_horizon.min_reach_float arena ~target ~ticks:horizon
  in
  let vmax =
    Mdp.Finite_horizon.max_reach_float arena ~target ~ticks:horizon
  in
  let i =
    Option.get
      (Mdp.Arena.index arena (SC.Automaton.start inst.SC.Proof.params))
  in
  Printf.printf
    "\nP[decide +%d] across all adversaries: min %.6f, max %.6f\n" bound
    vmin.(i) vmax.(i);
  print_endline "(the adversary schedules, but cannot steer the coin)"
