(* Example 4.1 of the paper, executable: why independence claims about
   distinct coin flips need care against non-oblivious adversaries, and
   how the first(a, U) event schemas of Section 4 repair them.

   Run with:  dune exec examples/independence.exe *)

module Q = Proba.Rational
module E = Core.Event

let pp_q q = Q.to_string q

let () =
  print_endline "== Example 4.1: adversarial dependence between coin flips ==";
  print_endline "";
  print_endline
    "Processes P and Q each flip one fair coin; the adversary schedules.";
  print_endline
    "Folklore claim: P[P = heads and Q = tails] = 1/4 \"by independence\".";
  print_endline "";

  (* The dependence-creating adversary: flip P; flip Q only on heads. *)
  let tree adv =
    Core.Exec_automaton.unfold Models.Race.pa adv Models.Race.start
      ~max_depth:4
  in
  let first_p = E.first Models.Race.Flip_p Models.Race.p_heads in
  let first_q = E.first Models.Race.Flip_q Models.Race.q_tails in
  let conj = E.conj first_p first_q in

  let show name adv =
    let t = tree adv in
    Printf.printf "%s adversary:\n" name;
    Printf.printf "  P[first(flip_P, heads)]              = %s\n"
      (pp_q (Core.Exec_automaton.prob_exact first_p t));
    Printf.printf "  P[first(flip_Q, tails)]              = %s\n"
      (pp_q (Core.Exec_automaton.prob_exact first_q t));
    Printf.printf "  P[conjunction]                       = %s\n"
      (pp_q (Core.Exec_automaton.prob_exact conj t));
    let both =
      Core.Pred.make "both" (fun s ->
          s.Models.Race.p <> Models.Race.Unflipped
          && s.Models.Race.q <> Models.Race.Unflipped)
    in
    let ht =
      Core.Pred.make "H,T" (fun s ->
          s.Models.Race.p = Models.Race.Heads
          && s.Models.Race.q = Models.Race.Tails)
    in
    let pb = Core.Exec_automaton.prob_exact (E.eventually both) t in
    let pht = Core.Exec_automaton.prob_exact (E.eventually ht) t in
    Printf.printf "  P[both flipped]                      = %s\n" (pp_q pb);
    if not (Q.is_zero pb) then
      Printf.printf "  P[H,T | both flipped]                = %s\n"
        (pp_q (Q.div pht pb));
    print_newline ()
  in
  show "fair" Models.Race.fair_adversary;
  show "dependency" Models.Race.dependency_adversary;

  print_endline
    "The dependency adversary drives the conditional probability to 1/2:";
  print_endline
    "the naive reading of \"independent coins\" is wrong.  The paper's";
  print_endline
    "first(a, U) schemas (which also count executions where a coin is";
  print_endline
    "never flipped) restore a sound bound, Proposition 4.2:";
  print_endline "";

  let pairs =
    [ (Models.Race.Flip_p, Models.Race.p_heads, Q.half);
      (Models.Race.Flip_q, Models.Race.q_tails, Q.half) ]
  in
  let premise =
    E.check_premise Models.Race.pa ~states:Models.Race.all_states
      pairs
  in
  Printf.printf "  premise (every flip gives its set prob >= 1/2): %b\n"
    premise;
  Printf.printf "  conjunction bound (product): %s\n"
    (pp_q (E.product_bound pairs));
  Printf.printf "  next(...) bound (min):       %s\n"
    (pp_q (E.min_bound pairs));
  print_endline "";
  print_endline
    "Both adversaries above satisfy the bounds, as Proposition 4.2";
  print_endline "guarantees for every adversary."
