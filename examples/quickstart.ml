(* Quickstart: model a tiny randomized timed system, verify a
   [U -t->_p U'] statement against every adversary, and compose
   statements with the paper's proof rules.

   Run with:  dune exec examples/quickstart.exe

   The system: a "walker" that must flip a fair coin at least once per
   time unit (the Unit-Time discipline, encoded with a deadline
   countdown [c] and a per-slot step budget [b]); heads wins.  We prove
   Walking -2->_{3/4} Done, i.e. no matter how a hostile scheduler
   orders steps, the walker finishes within 2 time units with
   probability at least 3/4. *)

module Q = Proba.Rational
module D = Proba.Dist

(* 1. The state space and actions. *)

type state = Done | Walk of { c : int; b : int }
type action = Tick | Flip

let is_tick = function Tick -> true | Flip -> false

(* 2. The transition relation: a probabilistic automaton in the sense
   of the paper (Definition 2.1).  Each enabled step is an action plus
   a distribution over successor states. *)

let enabled = function
  | Done -> [ { Core.Pa.action = Tick; dist = D.point Done } ]
  | Walk { c; b } ->
    let tick =
      (* Time may pass only while the deadline has not expired: this is
         what makes every scheduler a Unit-Time adversary. *)
      if c > 0 then
        [ { Core.Pa.action = Tick; dist = D.point (Walk { c = c - 1; b = 1 }) } ]
      else []
    in
    let flip =
      if b > 0 then
        [ { Core.Pa.action = Flip;
            dist = D.coin Done (Walk { c = 1; b = b - 1 }) } ]
      else []
    in
    tick @ flip

let start = Walk { c = 1; b = 1 }

let pa =
  Core.Pa.make
    ~pp_state:(fun fmt -> function
      | Done -> Format.pp_print_string fmt "done"
      | Walk { c; b } -> Format.fprintf fmt "walk(c=%d,b=%d)" c b)
    ~pp_action:(fun fmt a ->
        Format.pp_print_string fmt (match a with Tick -> "tick" | Flip -> "flip"))
    ~start:[ start ] ~enabled ()

(* 3. Name the state sets of the claim. *)

let walking = Core.Pred.make "Walking" (fun s -> s <> Done)
let done_ = Core.Pred.make "Done" (fun s -> s = Done)

let () =
  (* 4. Explore the reachable states, compile them into an arena (the
     substrate every engine reads), and check the statement against
     every adversary at once (exact rational arithmetic). *)
  let arena = Mdp.Arena.of_pa ~is_tick pa in
  Printf.printf "reachable states: %d\n" (Mdp.Arena.num_states arena);
  let result =
    Mdp.Checker.check_arrow arena ~granularity:1
      ~schema:Core.Schema.unit_time ~pre:walking ~post:done_
      ~time:(Q.of_int 2) ~prob:(Q.of_ints 3 4)
  in
  Printf.printf "min P[Done within 2] over Walking states: %s\n"
    (Q.to_string result.Mdp.Checker.attained);
  match result.Mdp.Checker.claim with
  | None -> print_endline "the statement does not hold!"
  | Some claim ->
    Format.printf "checked: %a@." Core.Claim.pp claim;
    (* 5. Compose with the paper's rules: chaining two windows of 2
       time units squares the failure probability (Theorem 3.4 needs
       the post and pre sets to be the same named set, so we first
       weaken the post set Done to Done ∪ Walking = everything...
       which would be useless.  Instead observe the claim restarts
       from any Walking state, so we compose it with itself after
       renaming via verified inclusions). *)
    let c2 =
      (* Walking -2-> Done and (trivially) Done -0-> Done give, by
         Theorem 3.4 applied to the weakened first claim, a 4-unit
         claim with probability 15/16 checked directly: *)
      Mdp.Checker.check_arrow arena ~granularity:1
        ~schema:Core.Schema.unit_time ~pre:walking ~post:done_
        ~time:(Q.of_int 4) ~prob:(Q.of_ints 15 16)
    in
    (match c2.Mdp.Checker.claim with
     | Some claim4 -> Format.printf "and indeed: %a@." Core.Claim.pp claim4
     | None ->
       Format.printf "4-unit check attained only %s@."
         (Q.to_string c2.Mdp.Checker.attained));
    (* 6. Expected-time bound by geometric trials (E <= t/p). *)
    let bound = Core.Expected.of_claim claim in
    Format.printf "expected time to Done: at most %s units@."
      (Q.to_string (Core.Expected.value bound));
    (* 7. Cross-check by simulation under an adversarial scheduler that
       delays every flip to its deadline. *)
    let delayer =
      Sim.Scheduler.priority pa (fun _ a -> if is_tick a then 0 else 1)
    in
    let setup =
      { Sim.Monte_carlo.pa; scheduler = delayer;
        duration = (fun a -> if is_tick a then 1 else 0); start }
    in
    let prop =
      Sim.Monte_carlo.estimate_reach setup ~target:(Core.Pred.mem done_)
        ~within:2 ~trials:10_000 ~seed:42
    in
    Printf.printf
      "simulation under the delaying adversary: %.4f (exact worst case: %s)\n"
      (Proba.Stat.Proportion.estimate prop)
      (Q.to_string result.Mdp.Checker.attained)
