(* Benchmark harness.

   Running [dune exec bench/main.exe] does two things:

   1. regenerates every experiment table of the reproduction (E1-E9 of
      DESIGN.md, recorded in EXPERIMENTS.md) -- the "tables and
      figures" of the paper;
   2. times the computational kernel behind each experiment with
      Bechamel (one [Test.make] per experiment), plus substrate
      micro-benchmarks.

   Flags: --quick (smaller experiment instances), --tables-only,
   --bench-only, --domains N (install the worker pool the engines use),
   --json PATH (persist per-kernel ns/run + run metadata, the format of
   the committed BENCH_baseline.json), --check-against PATH (exit
   nonzero if any e1-e12 kernel regressed more than 3x against a
   previously persisted baseline -- a coarse guard, robust to CI
   noise). *)

open Bechamel
open Toolkit

module Q = Proba.Rational
module LR = Lehmann_rabin
module IR = Itai_rodeh
module SC = Shared_coin
module BO = Ben_or

(* ----------------------------------------------------------------- *)
(* Kernels shared by the benchmarks (prepared once). *)

let lr3 = lazy (Models.lr ~n:3 ())
let ir4 = lazy (Models.election ~n:4 ())

let bench_tests () =
  let lr3 = Lazy.force lr3 in
  let ir4 = Lazy.force ir4 in
  let arena = lr3.LR.Proof.arena in
  let lr3_target = Mdp.Arena.indicator arena LR.Regions.c in
  let e1 =
    Test.make ~name:"e1:arrow A.11 (G -5-> P, n=3)"
      (Staged.stage (fun () ->
           let target = Mdp.Arena.indicator arena LR.Regions.p in
           Mdp.Finite_horizon.min_reach arena ~target ~ticks:5))
  in
  let e2 =
    Test.make ~name:"e2:check+compose T -13->_1/8 C (n=3)"
      (Staged.stage (fun () -> LR.Proof.composed lr3))
  in
  let e3 =
    Test.make ~name:"e3:max expected time (VI, n=3)"
      (Staged.stage (fun () ->
           Mdp.Expected_time.max_expected_ticks arena ~target:lr3_target ()))
  in
  let e4 =
    Test.make ~name:"e4:event schema evaluation (Example 4.1)"
      (Staged.stage (fun () ->
           let tree =
             Core.Exec_automaton.unfold Models.Race.pa
               Models.Race.dependency_adversary Models.Race.start
               ~max_depth:4
           in
           let conj =
             Core.Event.conj
               (Core.Event.first Models.Race.Flip_p
                  Models.Race.p_heads)
               (Core.Event.first Models.Race.Flip_q
                  Models.Race.q_tails)
           in
           Core.Exec_automaton.prob_exact conj tree))
  in
  let e5 =
    Test.make ~name:"e5:Lemma 6.1 sweep (n=3, 8092 states)"
      (Staged.stage (fun () -> LR.Invariant.check lr3.LR.Proof.expl))
  in
  let e6 =
    Test.make ~name:"e6:qualitative liveness (n=3)"
      (Staged.stage (fun () ->
           Mdp.Qualitative.always_reaches arena ~target:lr3_target))
  in
  let e7 =
    Test.make ~name:"e7:explore LR n=3"
      (Staged.stage (fun () -> LR.Proof.build ~n:3 ()))
  in
  let e8 =
    Test.make ~name:"e8:direct bound (13 units, n=3)"
      (Staged.stage (fun () -> LR.Proof.direct_bound lr3))
  in
  let e9 =
    Test.make ~name:"e9:election ladder (n=4)"
      (Staged.stage (fun () -> IR.Proof.arrows ir4))
  in
  let e10 =
    let star = Models.lr_topo ~topo:(LR.Topology.star 3) () in
    Test.make ~name:"e10:star topology arrows"
      (Staged.stage (fun () -> LR.Proof.arrows_topo star))
  in
  let e11 =
    let coin = Models.coin ~n:2 ~bound:4 () in
    Test.make ~name:"e11:shared coin pipeline (n=2, B=4)"
      (Staged.stage (fun () ->
           (SC.Proof.arrows coin, SC.Proof.expected_exact coin)))
  in
  let e12 =
    let consensus =
      Models.consensus ~n:3 ~f:1 ~cap:2 ~initial:[| false; false; true |] ()
    in
    Test.make ~name:"e12:Ben-Or safety + 2-round bound (n=3)"
      (Staged.stage (fun () ->
           ( BO.Proof.agreement_violation consensus,
             BO.Proof.decision_curve consensus ~rounds:[ 2 ] )))
  in
  let float_engine =
    Test.make ~name:"engine:min_reach_float (13 units, n=3)"
      (Staged.stage (fun () ->
           Mdp.Finite_horizon.min_reach_float arena ~target:lr3_target
             ~ticks:13))
  in
  let arena_compile =
    Test.make ~name:"arena:compile LR n=3"
      (Staged.stage (fun () ->
           Mdp.Arena.compile ~is_tick:LR.Automaton.is_tick
             lr3.LR.Proof.expl))
  in
  let arena_sweep =
    Test.make ~name:"arena:sweep max_reach_float (13 ticks, n=3)"
      (Staged.stage (fun () ->
           Mdp.Finite_horizon.max_reach_float arena ~target:lr3_target
             ~ticks:13))
  in
  let bisim_labels =
    Array.init (Mdp.Arena.num_states arena) (fun i ->
        if Core.Pred.mem LR.Regions.c (Mdp.Arena.state arena i) then 1
        else 0)
  in
  let bisim =
    Test.make ~name:"engine:bisim refine (n=3)"
      (Staged.stage (fun () -> Mdp.Bisim.refine arena ~labels:bisim_labels ()))
  in
  (* The interval plane, measured on its own: the signature refinement
     with float-point keys (vs the exact-plane escape hatch above --
     [engine:bisim] resolves the session default, Interval), and the
     certified two-sided VI bracket that only the interval plane can
     produce.  [interval:bisim] and [engine:bisim] differing is the
     point: same partition, cheaper plane. *)
  let interval_bisim =
    Test.make ~name:"interval:bisim (float-point signatures, n=3)"
      (Staged.stage (fun () ->
           Mdp.Bisim.refine arena ~labels:bisim_labels
             ~plane:Mdp.Plane.Interval ()))
  in
  let exact_bisim =
    Test.make ~name:"interval:bisim-exact-plane (escape hatch, n=3)"
      (Staged.stage (fun () ->
           Mdp.Bisim.refine arena ~labels:bisim_labels
             ~plane:Mdp.Plane.Exact ()))
  in
  let interval_vi =
    Test.make ~name:"interval:vi (certified E[T] bracket, n=3)"
      (Staged.stage (fun () ->
           Mdp.Expected_time.max_expected_ticks_interval arena
             ~target:lr3_target ()))
  in
  (* Symmetry reduction: the canonicalizer is the per-successor cost
     --sym adds to exploration (orbit closure + minimum); the lr4
     kernel is the payoff end to end — certify the rotation group and
     build the 40846-representative quotient of the 162964-state
     instance that makes exact n=4 phase checks feasible. *)
  let sym_canon =
    let canon =
      Analysis.Symmetry.canonicalizer ~equal:LR.State.equal
        (LR.Symmetry.ring ~n:3 ())
    in
    let s = Mdp.Arena.state arena 4000 in
    Test.make ~name:"sym:canon (ring orbit minimum, n=3)"
      (Staged.stage (fun () -> canon s))
  in
  let explore_lr4_reduced =
    let pa = LR.Automaton.make { LR.Automaton.n = 4; g = 1; k = 1 } in
    let spec = LR.Symmetry.ring ~n:4 () in
    Test.make ~name:"explore:lr4-reduced (certified orbit quotient)"
      (Staged.stage (fun () ->
           Analysis.Symmetry.explored ~model:"lr" ~mode:Analysis.Symmetry.On
             spec pa))
  in
  let sim =
    let params = { LR.Automaton.n = 8; g = 1; k = 1 } in
    let pa = LR.Automaton.make params in
    let start = LR.State.all_trying ~n:8 ~g:1 ~k:1 in
    let sched = LR.Schedulers.uniform pa in
    let rng = Proba.Rng.create ~seed:9 in
    Test.make ~name:"sim:one LR trajectory to C (n=8)"
      (Staged.stage (fun () ->
           Sim.Engine.run pa sched ~rng:(Proba.Rng.split rng)
             ~stop:(Core.Pred.mem LR.Regions.c)
             ~duration:LR.Automaton.duration start))
  in
  let rational_engine =
    Test.make ~name:"engine:A.11 with pure rationals (n=3)"
      (Staged.stage (fun () ->
           let target = Mdp.Arena.indicator arena LR.Regions.p in
           Mdp.Finite_horizon.min_reach_rational arena ~target ~ticks:5))
  in
  let substrate =
    let a = Proba.Bigint.of_string "123456789123456789123456789" in
    let b = Proba.Bigint.of_string "987654321987654321" in
    let q1 = Q.of_ints 355 113 in
    let q2 = Q.of_ints 22 7 in
    [ Test.make ~name:"substrate:bigint mul (96x60 bits)"
        (Staged.stage (fun () -> Proba.Bigint.mul a b));
      Test.make ~name:"substrate:bigint divmod"
        (Staged.stage (fun () -> Proba.Bigint.divmod a b));
      Test.make ~name:"substrate:rational add"
        (Staged.stage (fun () -> Q.add q1 q2));
      Test.make ~name:"substrate:dyadic add"
        (let a = Proba.Dyadic.of_rational (Q.of_ints 3 8) in
         let b = Proba.Dyadic.of_rational (Q.of_ints 5 64) in
         Staged.stage (fun () -> Proba.Dyadic.add a b));
      Test.make ~name:"substrate:rng bits64"
        (let rng = Proba.Rng.create ~seed:1 in
         Staged.stage (fun () -> Proba.Rng.bits64 rng));
      Test.make ~name:"substrate:dist bind (coin, 4 outcomes)"
        (Staged.stage (fun () ->
             Proba.Dist.bind (Proba.Dist.coin 0 1) (fun x ->
                 Proba.Dist.coin x (x + 2)))) ]
  in
  (* The certificate pipeline, with the claim proved once outside the
     measured region: [cert:emit] times the total serialization
     (Claim.fold + Merkle hashing + JSON rendering), [cert:verify] the
     strict parse + the independent rule re-check -- the whole
     [verify-cert] hot path, which by design explores nothing. *)
  let cert_tests =
    let claim =
      match LR.Proof.composed lr3 with
      | Ok c -> c
      | Error e -> failwith ("cert bench: " ^ e)
    in
    let config =
      { Cert.Node.model = "lr"; n = 3; plane = "interval"; sym = "off";
        faults = "none"; budget = "states:2000000";
        params = [ ("g", "1"); ("k", "1"); ("topology", "ring") ] }
    in
    let fingerprint = Mdp.Arena.fingerprint arena in
    let emit () =
      Analysis.Json.to_string
        (Cert.Node.to_json (Cert.Emit.emit ~config ~fingerprint claim))
    in
    let body = emit () in
    [ Test.make ~name:"cert:emit (lr n=3 claim DAG)"
        (Staged.stage emit);
      Test.make ~name:"cert:verify (lr n=3, parse + re-check)"
        (Staged.stage (fun () ->
             match Cert.Node.of_string body with
             | Error e -> failwith ("cert bench: " ^ e)
             | Ok cert -> (
                 match Cert.Verify.run cert with
                 | Ok s -> s.Cert.Verify.nodes
                 | Error e ->
                   failwith ("cert bench: " ^ Cert.Verify.error_to_string e))))
    ]
  in
  (* The verification service, measured through a real socket: one
     full client cycle (connect + request + close) per run against an
     in-process daemon.  The /check kernel is pre-warmed so it times a
     result-cache hit (HTTP + dispatch + cache lookup), not
     re-verification.  Every kernel opens its own connection and
     closes it on completion: a shared keep-alive connection would
     park a worker domain between kernels until its read timeout, so
     whichever kernel ran second used to see timeout-sized latencies
     on a small pool. *)
  let serve_tests =
    let d =
      Server.Daemon.start
        { Server.Daemon.default_config with
          Server.Daemon.port = 0; domains = 2; cache_mb = 32;
          read_timeout = 1.0 }
    in
    at_exit (fun () ->
        Server.Daemon.stop d;
        Server.Daemon.wait d);
    let url =
      { Server.Load.host = "127.0.0.1";
        port = Server.Daemon.port d; target = "/" }
    in
    let roundtrip ?meth ?body target =
      let conn = Server.Load.Conn.create url in
      Fun.protect
        ~finally:(fun () -> Server.Load.Conn.close conn)
        (fun () ->
           match Server.Load.Conn.request conn ?meth ?body target with
           | Ok r -> r.Server.Http.status
           | Error e -> failwith ("serve bench: " ^ e))
    in
    (* Warm outside the measured region: daemon start + the one real
       verification happen here, so the kernels time steady-state
       client cycles only. *)
    ignore (roundtrip "/check?model=lr&n=3");
    let batch_body =
      {|{"queries":[{"endpoint":"/check","model":"lr","n":"3"},{"endpoint":"/check","model":"lr","n":"3"}]}|}
    in
    [ Test.make ~name:"serve:throughput (/health client cycle)"
        (Staged.stage (fun () -> roundtrip "/health"));
      Test.make ~name:"serve:cache-hit (/check lr n=3, warm)"
        (Staged.stage (fun () -> roundtrip "/check?model=lr&n=3"));
      (* The /batch envelope on warm elements: parse the envelope,
         dedup the two equal keys, answer both from the result cache
         and raw-splice the bodies -- the per-element overhead the
         batch surface adds on top of a cache hit. *)
      Test.make ~name:"serve:batch (POST /batch, 2x lr n=3, warm)"
        (Staged.stage (fun () ->
             roundtrip ~meth:"POST" ~body:batch_body "/batch"));
      (* The degraded path end to end: an uncached query (the line
         topology is never warmed, and SRV122 bodies are never cached)
         whose 1 ms allowance expires mid-exploration, so every round
         trip times arm-deadline + cut engines + build the SRV122
         body. *)
      Test.make ~name:"serve:deadline (/check lr line, 1ms, degraded)"
        (Staged.stage (fun () ->
             roundtrip "/check?model=lr&n=3&topology=line&deadline_ms=1")) ]
  in
  (* The snapshot cold path [prtb serve --snapshot-dir] pays once per
     file at startup: strict container decode (digest check included)
     + fragment rebuild + arena assembly + fingerprint comparison.
     Encoded once outside the measured region. *)
  let snapshot_tests =
    let config =
      { Snapshot.Store.model = "lr"; n = 3; g = 1; k = 1;
        topology = "ring"; bound = 0; cap = 0; f = 0; initial = [||];
        sym = Analysis.Symmetry.Off }
    in
    let bytes = Snapshot.Store.encode config (Snapshot.Store.Lr lr3) in
    [ Test.make ~name:"serve:snapshot-cold (decode + assemble lr n=3)"
        (Staged.stage (fun () ->
             match Snapshot.Store.of_string bytes with
             | Ok _ -> ()
             | Error e -> failwith ("snapshot bench: " ^ e))) ]
  in
  (* One mixed chaos round: garbage and a valid request from two
     concurrent domains, fresh connections each.  A dedicated daemon --
     the serve kernels above deliberately park the shared daemon's
     single worker with their keep-alive connection. *)
  let chaos_tests =
    let d =
      Server.Daemon.start
        { Server.Daemon.default_config with
          Server.Daemon.port = 0; domains = 3; cache_mb = 8;
          read_timeout = 1.0 }
    in
    at_exit (fun () ->
        Server.Daemon.stop d;
        Server.Daemon.wait d);
    let url =
      { Server.Load.host = "127.0.0.1";
        port = Server.Daemon.port d; target = "/" }
    in
    [ Test.make ~name:"chaos:mixed (1 round, 2 clients)"
        (Staged.stage (fun () ->
             let o =
               Server.Chaos.run_scenario ~rounds:1 ~clients:2 ~seed:42 url
                 Server.Chaos.Mixed
             in
             if o.Server.Chaos.failures <> [] then
               failwith (List.hd o.Server.Chaos.failures);
             o.Server.Chaos.answered)) ]
  in
  Test.make_grouped ~name:"prtb"
    ([ e1; e2; e3; e4; e5; e6; e7; e8; e9; e10; e11; e12; float_engine;
       rational_engine; arena_compile; arena_sweep; bisim;
       interval_bisim; exact_bisim; interval_vi;
       sym_canon; explore_lr4_reduced; sim ]
     @ substrate @ cert_tests @ serve_tests @ snapshot_tests
     @ chaos_tests)

(* ----------------------------------------------------------------- *)

let run_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances (bench_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
         let estimate =
           match Analyze.OLS.estimates ols with
           | Some (t :: _) -> t
           | Some [] | None -> nan
         in
         (name, estimate) :: acc)
      results []
  in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "\n=== kernel timings (monotonic clock, per run) ===\n\n";
  List.iter
    (fun (name, estimate) ->
       let pretty =
         if estimate >= 1e9 then Printf.sprintf "%8.3f s " (estimate /. 1e9)
         else if estimate >= 1e6 then
           Printf.sprintf "%8.3f ms" (estimate /. 1e6)
         else if estimate >= 1e3 then
           Printf.sprintf "%8.3f us" (estimate /. 1e3)
         else Printf.sprintf "%8.1f ns" estimate
       in
       Printf.printf "  %-45s %s\n%!" name pretty)
    rows;
  rows

(* ----------------------------------------------------------------- *)
(* Persisted baseline (--json) and regression guard (--check-against). *)

module J = Analysis.Json

let emit_json ~path ~quick ~domains rows =
  let doc =
    J.Obj
      [ ("schema", J.Str "prtb-bench/1");
        ("ocaml", J.Str Sys.ocaml_version);
        ("word_size", J.Int Sys.word_size);
        ("hostname", J.Str (Unix.gethostname ()));
        ("unix_time", J.Num (Unix.gettimeofday ()));
        ("clock", J.Str "monotonic");
        ("quota_s", J.Num 0.5);
        ("quick", J.Bool quick);
        ("domains", (match domains with None -> J.Null | Some n -> J.Int n));
        ( "results",
          J.Arr
            (List.map
               (fun (name, ns) ->
                  J.Obj [ ("name", J.Str name); ("ns_per_run", J.Num ns) ])
               rows) ) ]
  in
  let oc = open_out path in
  output_string oc (J.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "\nwrote %s (%d kernels)\n%!" path (List.length rows)

let baseline_rows path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  match J.of_string contents with
  | Error msg -> failwith (Printf.sprintf "%s: JSON parse error: %s" path msg)
  | Ok doc ->
    (match J.member "results" doc with
     | Some (J.Arr items) ->
       List.filter_map
         (fun item ->
            match J.member "name" item, J.member "ns_per_run" item with
            | Some (J.Str name), Some v ->
              Option.map (fun ns -> (name, ns)) (J.to_float_opt v)
            | _, _ -> None)
         items
     | Some _ | None ->
       failwith (Printf.sprintf "%s: missing \"results\" array" path))

(* The tier-1-covered kernels: the e1-e12 experiment pipelines plus
   the subsystem kernels whose fast paths the suite also exercises
   (symmetry canonicalization, the certified lr4 orbit quotient, the
   served degraded path, the snapshot cold load, the chaos round, the
   certificate emit/verify pipeline, bisimulation refinement and the
   interval-plane kernels).  The substrate and sim micro-benchmarks
   are too jittery for even a coarse CI gate. *)
let guarded_prefixes =
  [ "prtb/sym:"; "prtb/explore:"; "prtb/serve:deadline";
    "prtb/serve:snapshot-cold"; "prtb/chaos:"; "prtb/engine:bisim";
    "prtb/interval:"; "prtb/cert:" ]

let guarded name =
  let has_prefix p =
    String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  (has_prefix "prtb/e"
   && (match name.[String.length "prtb/e"] with
       | '0' .. '9' -> true
       | _ -> false))
  || List.exists has_prefix guarded_prefixes

let check_against ~path rows =
  let baseline = baseline_rows path in
  let failures = ref [] in
  List.iter
    (fun (name, ns) ->
       if guarded name && Float.is_finite ns then
         match List.assoc_opt name baseline with
         | Some base when Float.is_finite base && base > 0.0 ->
           let ratio = ns /. base in
           if ratio > 3.0 then failures := (name, base, ns, ratio) :: !failures
         | Some _ | None -> ())
    rows;
  match !failures with
  | [] ->
    Printf.printf "regression guard: all guarded kernels within 3x of %s\n%!"
      path
  | fs ->
    Printf.printf "regression guard FAILED against %s:\n" path;
    List.iter
      (fun (name, base, ns, ratio) ->
         Printf.printf "  %-45s %.0f ns -> %.0f ns (%.1fx)\n" name base ns
           ratio)
      (List.rev fs);
    exit 1

let arg_value argv flag =
  let rec go = function
    | f :: v :: _ when f = flag -> Some v
    | _ :: rest -> go rest
    | [] -> None
  in
  go argv

let () =
  let argv = Array.to_list Sys.argv in
  let quick = List.mem "--quick" argv in
  let tables_only = List.mem "--tables-only" argv in
  let bench_only = List.mem "--bench-only" argv in
  let json_path = arg_value argv "--json" in
  let check_path = arg_value argv "--check-against" in
  let domains =
    match arg_value argv "--domains" with
    | None -> None
    | Some v ->
      (match int_of_string_opt v with
       | Some n when n >= 1 -> Some n
       | Some _ | None -> failwith "--domains expects a positive integer")
  in
  (match domains with
   | None -> ()
   | Some n ->
     Parallel.Pool.set_default (Some (Parallel.Pool.create ~domains:n)));
  if not bench_only then begin
    let config =
      if quick then Experiments.Harness.quick else Experiments.Harness.default
    in
    Experiments.Harness.run_all (Experiments.Harness.make_ctx config)
  end;
  if not tables_only then begin
    let rows = run_benchmarks () in
    (match json_path with
     | Some path -> emit_json ~path ~quick ~domains rows
     | None -> ());
    match check_path with
    | Some path -> check_against ~path rows
    | None -> ()
  end
